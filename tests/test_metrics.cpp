// Tests for the metrics layer (CPU monitor, text tables, I/O model) and
// the experiment harness.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "apps/bfs.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/trace.hpp"
#include "platform/file_util.hpp"
#include "metrics/cpu_monitor.hpp"
#include "metrics/io_model.hpp"
#include "metrics/table.hpp"

namespace gpsa {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"x", "12345"});
  const std::string out = table.to_string();
  // Header, underline, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("name   value"), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
}

TEST(CpuMonitor, CollectsSamplesDuringBusyWork) {
  // Under a parallel ctest run this process may be descheduled for most
  // of the window; assert the monitor attributes *some* busy CPU rather
  // than a fair scheduling share, retrying a few times under load.
  CpuMonitor::Report report;
  for (int attempt = 0; attempt < 5 && report.mean_cores <= 0.02;
       ++attempt) {
    CpuMonitor monitor(0.01);
    monitor.start();
    volatile std::uint64_t sink = 0;
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start <
           std::chrono::milliseconds(120)) {
      sink = sink + 1;
    }
    report = monitor.stop();
  }
  EXPECT_GE(report.samples.size(), 3U);
  EXPECT_GT(report.mean_cores, 0.02);
  EXPECT_GE(report.peak_cores, report.mean_cores);
  EXPECT_GT(report.mean_percent_of_machine, 0.0);
}

TEST(CpuMonitor, StopWithoutStartIsEmpty) {
  CpuMonitor monitor;
  const auto report = monitor.stop();
  EXPECT_TRUE(report.samples.empty());
  EXPECT_EQ(report.mean_cores, 0.0);
}

TEST(IoModel, AddsTransferTime) {
  // The env default is 120 MB/s unless overridden.
  IoStats io;
  io.bytes_read = 120 * 1024 * 1024;
  const double bandwidth = model_disk_bandwidth_bytes_per_sec();
  if (bandwidth <= 0.0) {
    GTEST_SKIP() << "modeling disabled via GPSA_MODEL_DISK_MBPS=0";
  }
  const double modeled = modeled_out_of_core_seconds(0.5, io);
  EXPECT_NEAR(modeled, 0.5 + static_cast<double>(io.total()) / bandwidth,
              1e-9);
  EXPECT_GT(modeled, 0.5);
}

TEST(IoModel, StatsAccumulate) {
  IoStats a{100, 50};
  const IoStats b{10, 5};
  a += b;
  EXPECT_EQ(a.bytes_read, 110U);
  EXPECT_EQ(a.bytes_written, 55U);
  EXPECT_EQ(a.total(), 165U);
}

TEST(EngineIoStats, TracksDispatchVolume) {
  // BFS on a chain under sweep mode: each superstep dispatches one vertex
  // (3 CSR entries with degree+target+sentinel) and scans the whole value
  // column — the O(V) cost worklist mode exists to avoid.
  const EdgeList graph = chain(32);
  const BfsProgram program(0);
  EngineOptions eo;
  eo.num_dispatchers = 1;
  eo.num_computers = 1;
  eo.scheduler_workers = 1;
  eo.exec = ExecMode::kSweep;
  const auto result = Engine::run(graph, program, eo);
  ASSERT_TRUE(result.is_ok());
  const RunResult& r = result.value();
  EXPECT_GT(r.io.bytes_read, 0U);
  EXPECT_GT(r.io.bytes_written, 0U);
  // Value-column checks alone are supersteps * |V| * 4 bytes.
  EXPECT_GE(r.io.bytes_read, r.supersteps * 32 * 4);
  // Writes: one touched vertex per superstep except the last.
  EXPECT_EQ(r.io.bytes_written, (r.supersteps - 1) * 4);

  // Worklist mode checks only the frontier (one vertex per superstep on
  // the chain), so its read volume must come in strictly under the sweep.
  eo.exec = ExecMode::kWorklist;
  const auto wl = Engine::run(graph, program, eo);
  ASSERT_TRUE(wl.is_ok());
  EXPECT_LT(wl.value().io.bytes_read, r.io.bytes_read);
  EXPECT_EQ(wl.value().io.bytes_written, r.io.bytes_written);
}

TEST(Harness, SymmetrizeDoublesAndDedups) {
  EdgeList g;
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // already both ways
  g.add_edge(1, 2);
  const EdgeList sym = symmetrize(g);
  EXPECT_EQ(sym.num_edges(), 4U);  // 0<->1, 1<->2
}

TEST(Harness, NamesAreStable) {
  EXPECT_EQ(system_name(SystemKind::kGpsa), "GPSA");
  EXPECT_EQ(system_name(SystemKind::kXStream), "X-Stream");
  EXPECT_EQ(algo_name(AlgoKind::kPageRank), "PageRank");
  EXPECT_EQ(all_systems().size(), 3U);
  EXPECT_EQ(paper_algos().size(), 3U);
}

TEST(Harness, RunCellProducesConsistentResults) {
  ExperimentOptions options;
  options.scale = 0.02;
  options.runs = 1;
  options.supersteps = 3;
  options.threads = 2;
  const EdgeList graph =
      prepare_graph(PaperGraph::kGoogle, AlgoKind::kBfs, options);
  for (SystemKind system : all_systems()) {
    const auto cell = run_cell(system, AlgoKind::kBfs, graph, options);
    ASSERT_TRUE(cell.is_ok()) << cell.status().to_string();
    EXPECT_EQ(cell.value().supersteps, 3U);
    EXPECT_GT(cell.value().messages, 0U);
    EXPECT_GT(cell.value().io_bytes, 0U);
    EXPECT_GE(cell.value().modeled_seconds, cell.value().avg_seconds);
  }
}

TEST(Harness, AllSystemsAgreeThroughRunCellMessages) {
  ExperimentOptions options;
  options.scale = 0.02;
  options.runs = 1;
  options.supersteps = 5;
  options.threads = 2;
  const EdgeList graph =
      prepare_graph(PaperGraph::kGoogle, AlgoKind::kPageRank, options);
  std::uint64_t expected = 0;
  for (SystemKind system : all_systems()) {
    const auto cell =
        run_cell(system, AlgoKind::kPageRank, graph, options);
    ASSERT_TRUE(cell.is_ok());
    if (expected == 0) {
      expected = cell.value().messages;
    }
    EXPECT_EQ(cell.value().messages, expected)
        << system_name(system) << " diverged";
  }
}

TEST(Trace, CsvRoundTripsSeriesLengths) {
  const EdgeList graph = chain(6);
  const BfsProgram program(0);
  EngineOptions eo;
  eo.num_dispatchers = 1;
  eo.num_computers = 1;
  eo.scheduler_workers = 1;
  const auto result = Engine::run(graph, program, eo);
  ASSERT_TRUE(result.is_ok());
  auto dir = ScratchDir::create("trace");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("t.csv");
  ASSERT_TRUE(write_run_trace_csv(result.value(), path).is_ok());
  const auto data = read_file(path);
  ASSERT_TRUE(data.is_ok());
  const std::string text(reinterpret_cast<const char*>(data.value().data()),
                         data.value().size());
  // Header plus one line per superstep.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
            static_cast<long>(result.value().supersteps) + 1);
  EXPECT_NE(text.find("superstep,seconds,messages,updates"),
            std::string::npos);
}

TEST(Trace, TextFormatterShowsEverySuperstep) {
  const EdgeList graph = chain(5);
  const BfsProgram program(0);
  EngineOptions eo;
  eo.num_dispatchers = 1;
  eo.num_computers = 1;
  eo.scheduler_workers = 1;
  const auto result = Engine::run(graph, program, eo);
  ASSERT_TRUE(result.is_ok());
  const std::string text = format_run_trace(result.value());
  // Header + supersteps lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
            static_cast<long>(result.value().supersteps) + 1);
}

}  // namespace
}  // namespace gpsa
