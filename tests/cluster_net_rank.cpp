// One rank of a multi-process cluster run — the fork+exec target of
// tests/test_net.cpp and the bench self-spawn. Every instance builds the
// same deterministic graph, reads its cluster coordinates from the
// GPSA_CLUSTER_* environment (ClusterNetOptions::from_env), runs
// run_cluster_rank, and exits 0 on success / 1 on error. A text summary
// of this rank's result (and, on rank 0, the full value vector) goes to
// GPSA_NET_HELPER_SUMMARY when set, so the parent can diff the run
// against its in-process oracle.
//
// Helper-specific environment:
//   GPSA_NET_HELPER_PROGRAM   pagerank | bfs                [pagerank]
//   GPSA_NET_HELPER_EXEC      sweep | worklist              [engine default]
//   GPSA_NET_HELPER_STORE     value-store directory         [in-memory]
//   GPSA_NET_HELPER_SUMMARY   result summary path           [none]
//   GPSA_NET_HELPER_CRASH_AT  _exit(3) mid-superstep N      [off]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "apps/bfs.hpp"
#include "apps/pagerank.hpp"
#include "cluster/cluster_net.hpp"
#include "graph/generators.hpp"

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "cluster_net_rank: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace gpsa;

  auto net = ClusterNetOptions::from_env();
  if (!net.is_ok()) {
    return fail(net.status().to_string());
  }

  std::unique_ptr<Program> program;
  std::string program_name = "pagerank";
  if (const char* env = std::getenv("GPSA_NET_HELPER_PROGRAM")) {
    program_name = env;
  }
  if (program_name == "pagerank") {
    program = std::make_unique<PageRankProgram>(5);
  } else if (program_name == "bfs") {
    program = std::make_unique<BfsProgram>(0);
  } else {
    return fail("unknown GPSA_NET_HELPER_PROGRAM: " + program_name);
  }

  ClusterOptions options;
  if (const char* exec = std::getenv("GPSA_NET_HELPER_EXEC")) {
    if (std::strcmp(exec, "sweep") == 0) {
      options.exec = ExecMode::kSweep;
    } else if (std::strcmp(exec, "worklist") == 0) {
      options.exec = ExecMode::kWorklist;
    } else {
      return fail(std::string("unknown GPSA_NET_HELPER_EXEC: ") + exec);
    }
  }
  if (const char* store = std::getenv("GPSA_NET_HELPER_STORE")) {
    options.value_store_dir = store;
  }
  if (const char* crash = std::getenv("GPSA_NET_HELPER_CRASH_AT")) {
    set_cluster_net_crash_at_superstep(std::atoi(crash));
  }

  // Must match the oracle graph in tests/test_net.cpp byte for byte.
  const EdgeList graph = rmat(8, 2000, 91);

  const auto result =
      run_cluster_rank(graph, *program, options, net.value());
  if (!result.is_ok()) {
    return fail(result.status().to_string());
  }

  if (const char* summary_path = std::getenv("GPSA_NET_HELPER_SUMMARY")) {
    const ClusterRunResult& r = result.value();
    std::ofstream out(summary_path, std::ios::trunc);
    if (!out) {
      return fail(std::string("cannot write summary: ") + summary_path);
    }
    out << "supersteps " << r.supersteps << "\n";
    out << "total_messages " << r.total_messages << "\n";
    out << "converged " << (r.converged ? 1 : 0) << "\n";
    out << "measured_wire " << (r.measured_wire ? 1 : 0) << "\n";
    out << "bytes_on_wire " << r.bytes_on_wire << "\n";
    out << "frames_sent " << r.frames_sent << "\n";
    out << "superstep_wire";
    for (const std::uint64_t bytes : r.superstep_wire_bytes) {
      out << " " << bytes;
    }
    out << "\n";
    if (net.value().rank == 0) {
      out << "values";
      for (const Payload value : r.values) {
        out << " " << value;
      }
      out << "\n";
    }
    if (!out.good()) {
      return fail("summary write failed");
    }
  }
  return 0;
}
