// Concurrency stress suite for the sanitizer matrix (ASan+UBSan / TSan).
//
// These tests hammer the three protocols whose correctness the rest of the
// engine is built on, in shapes chosen to maximize the interleavings a
// sanitizer can observe rather than to fill wall-clock time:
//
//   1. MpscQueue park/notify: many producers against one blocking consumer,
//      including the Vyukov "disconnected window" (a producer preempted
//      between the tail exchange and the next-pointer publish) — the window
//      where a lost wakeup would deadlock pop();
//   2. the two-column flip of the value file: dispatcher threads consume()
//      flag bits in the dispatch column while computer threads store
//      payloads into the update column and read dispatch-column payloads
//      across the same superstep (§IV.F's one sanctioned cross-role
//      overlap), across several superstep boundaries;
//   3. fork-based crash injection around ValueFile::checkpoint: a child
//      process dies at chosen points inside the checkpoint write sequence
//      and the parent drives the §IV.G recovery path over the wreckage.
//
// Iteration counts shrink under GPSA_SANITIZE_ACTIVE: sanitizer runs pay a
// 5-20x slowdown, and the interleavings per iteration are what matter.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include <csignal>

#include "actor/actor_system.hpp"
#include "actor/work_stealing_deque.hpp"
#include "util/lockdep.hpp"
#include "graph/csr.hpp"
#include "graph/csr_file.hpp"
#include "graph/edge_list.hpp"
#include "io/block_cache.hpp"
#include "platform/file_util.hpp"
#include "storage/recovery.hpp"
#include "storage/value_file.hpp"
#include "util/mpsc_queue.hpp"
#include "util/rng.hpp"
#include "util/spsc_ring.hpp"

namespace gpsa {
namespace {

#if defined(GPSA_SANITIZE_ACTIVE)
constexpr int kScaleDivisor = 4;  // sanitizer runs: fewer reps, same shapes
#else
constexpr int kScaleDivisor = 1;
#endif

// --- 1. MpscQueue park/notify ------------------------------------------------

TEST(MpscPark, ManyProducersAgainstBlockingConsumer) {
  // Producers outnumber cores, so pushes are routinely preempted inside the
  // disconnected window; periodic producer naps let the consumer drain the
  // queue and park, so the notify path runs thousands of times instead of
  // once. The consumer validates per-producer FIFO while popping blocking.
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 8'000 / kScaleDivisor;
  MpscQueue<std::pair<int, int>> queue;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.push({p, i});
        if ((i & 63) == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        } else if ((i & 7) == 0) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<int> next_expected(kProducers, 0);
  // A lost wakeup deadlocks this loop; the ctest timeout turns that into a
  // hard failure, so the park/notify window is machine-checked.
  for (int received = 0; received < kProducers * kPerProducer; ++received) {
    const auto [p, i] = queue.pop();
    ASSERT_EQ(i, next_expected[p]) << "producer " << p;
    ++next_expected[p];
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_TRUE(queue.approx_empty());
}

TEST(MpscPark, SlowTricklePutsConsumerToSleepEveryItem) {
  // One item at a time with gaps longer than pop()'s spin phase: every
  // delivery takes the full park -> notify -> wake round trip.
  constexpr int kItems = 600 / kScaleDivisor;
  MpscQueue<int> queue;
  std::thread producer([&queue] {
    for (int i = 0; i < kItems; ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      queue.push(i);
    }
  });
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(queue.pop(), i);
  }
  producer.join();
  EXPECT_TRUE(queue.approx_empty());
}

TEST(MpscPark, BurstsOfProducersRaceASpinningThenParkingConsumer) {
  // Repeated short bursts: each round the consumer empties the queue and
  // parks before the next burst begins, so the sleepers_ > 0 branch of
  // push() and the recheck-after-park branch of pop() both run constantly.
  constexpr int kRounds = 40 / kScaleDivisor + 2;
  constexpr int kProducers = 6;
  constexpr int kPerBurst = 250;
  MpscQueue<std::uint64_t> queue;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> burst;
    burst.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      burst.emplace_back([&queue, p] {
        for (int i = 0; i < kPerBurst; ++i) {
          queue.push((static_cast<std::uint64_t>(p) << 32) | i);
        }
      });
    }
    std::uint64_t sum = 0;
    for (int i = 0; i < kProducers * kPerBurst; ++i) {
      sum += queue.pop() & 0xffff'ffffU;
    }
    EXPECT_EQ(sum, static_cast<std::uint64_t>(kProducers) * kPerBurst *
                       (kPerBurst - 1) / 2);
    for (auto& t : burst) {
      t.join();
    }
    ASSERT_TRUE(queue.approx_empty()) << "round " << round;
  }
}

TEST(MpscPark, MoveOnlyPayloadsUnderContentionFreeCleanly) {
  // Heap-owning payloads across the full producer/consumer handoff: ASan
  // verifies node ownership, LSan verifies the destructor drain of a queue
  // abandoned with items still enqueued.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2'000 / kScaleDivisor;
  auto queue = std::make_unique<MpscQueue<std::unique_ptr<int>>>();
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue->push(std::make_unique<int>(p * kPerProducer + i));
      }
    });
  }
  // Pop only half; the destructor must reclaim the rest.
  long long seen = 0;
  for (int i = 0; i < kProducers * kPerProducer / 2; ++i) {
    auto v = queue->pop();
    ASSERT_NE(v, nullptr);
    seen += *v;
  }
  EXPECT_GT(seen, 0);
  for (auto& t : producers) {
    t.join();
  }
  queue.reset();  // drains remaining nodes; LSan checks nothing leaks
}

TEST(SpscPressure, RingSlotHandoffUnderProducerConsumerRace) {
  // Companion for the ring substrate: heap payloads streamed through a
  // tiny ring. The try_pop slot reset keeps at most `capacity` live
  // allocations pinned; LSan/ASan verify the hand-off.
  constexpr int kTotal = 20'000 / kScaleDivisor;
  SpscRing<std::unique_ptr<int>> ring(8);
  std::thread producer([&ring] {
    for (int i = 0; i < kTotal;) {
      if (ring.try_push(std::make_unique<int>(i))) {
        ++i;
      }
    }
  });
  for (int expected = 0; expected < kTotal;) {
    if (auto v = ring.try_pop()) {
      ASSERT_NE(*v, nullptr);
      ASSERT_EQ(**v, expected);
      ++expected;
    }
  }
  producer.join();
}

// --- 2. Two-column flip ------------------------------------------------------

// Payload a vertex carries after superstep `s` completes (s == -1 is the
// initial state). Stays inside the 31-bit payload range.
Payload flip_payload(VertexId v, int s) {
  return static_cast<Payload>((static_cast<std::uint64_t>(s + 2) * 977u + v) &
                              kPayloadMask);
}

TEST(TwoColumnFlip, ConsumeFlagsRaceStoresAcrossSuperstepBoundaries) {
  // Faithful thread-level replay of §IV.F: per superstep, dispatcher
  // threads sweep disjoint vertex intervals of the dispatch column —
  // reading payloads and fetch_or-ing the stale bit — while computer
  // threads concurrently store the next payloads into the update column
  // and read dispatch-column payloads of arbitrary vertices (the sanctioned
  // cross-role overlap). The main thread checks the full column state at
  // every superstep barrier, then the roles flip.
  constexpr VertexId kVertices = 2'048;
  constexpr int kSupersteps = 6;
  constexpr unsigned kDispatchers = 2;
  constexpr unsigned kComputers = 2;

  auto dir = ScratchDir::create("flipstress");
  ASSERT_TRUE(dir.is_ok());
  auto file = ValueFile::create(dir.value().file("flip.values"), kVertices,
                                "flipstress");
  ASSERT_TRUE(file.is_ok()) << file.status().to_string();
  ValueFile& vf = file.value();

  const unsigned d0 = ValueFile::dispatch_column(0);
  for (VertexId v = 0; v < kVertices; ++v) {
    vf.store(v, d0, make_slot(flip_payload(v, -1), /*stale=*/false));
    vf.store(v, 1 - d0, make_slot(0, /*stale=*/true));
  }

  // Threads report protocol violations through a counter; gtest assertions
  // are not thread-safe off the main thread.
  std::atomic<int> violations{0};

  for (int s = 0; s < kSupersteps; ++s) {
    const unsigned dcol = ValueFile::dispatch_column(s);
    const unsigned ucol = ValueFile::update_column(s);
    std::vector<std::thread> workers;
    workers.reserve(kDispatchers + kComputers);
    for (unsigned d = 0; d < kDispatchers; ++d) {
      workers.emplace_back([&, d] {
        const VertexId begin = kVertices * d / kDispatchers;
        const VertexId end = kVertices * (d + 1) / kDispatchers;
        for (VertexId v = begin; v < end; ++v) {
          const Slot prev = vf.consume(v, dcol);
          if (slot_is_stale(prev) ||
              slot_payload(prev) != flip_payload(v, s - 1)) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (unsigned c = 0; c < kComputers; ++c) {
      workers.emplace_back([&, c] {
        for (VertexId v = c; v < kVertices; v += kComputers) {
          // Cross-role overlap: payload bits of the dispatch column must be
          // immutable while its flag bit flips under us.
          const VertexId w = (v * 31 + static_cast<VertexId>(s)) % kVertices;
          const Payload seen = slot_payload(vf.load(w, dcol));
          if (seen != flip_payload(w, s - 1)) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
          vf.store(v, ucol, make_slot(flip_payload(v, s), /*stale=*/false));
        }
      });
    }
    for (auto& t : workers) {
      t.join();
    }
    ASSERT_EQ(violations.load(), 0) << "superstep " << s;
    // Superstep barrier: dispatch column fully consumed, update column
    // holds exactly this superstep's payloads.
    for (VertexId v = 0; v < kVertices; ++v) {
      const Slot consumed = vf.load(v, dcol);
      ASSERT_TRUE(slot_is_stale(consumed)) << "vertex " << v;
      ASSERT_EQ(slot_payload(consumed), flip_payload(v, s - 1))
          << "vertex " << v;
      const Slot updated = vf.load(v, ucol);
      ASSERT_FALSE(slot_is_stale(updated)) << "vertex " << v;
      ASSERT_EQ(slot_payload(updated), flip_payload(v, s)) << "vertex " << v;
    }
    // Manager-style checkpoint between supersteps (msync on the quiescent
    // mapping, header bump included).
    ASSERT_TRUE(vf.checkpoint(static_cast<std::uint64_t>(s) + 1).is_ok());
  }
  EXPECT_EQ(vf.completed_supersteps(), static_cast<std::uint64_t>(kSupersteps));
}

// --- 3. Fork-based crash injection around ValueFile::checkpoint --------------

// Brings `path` to "k supersteps completed, checkpointed": the dispatch
// column of superstep k holds flip_payload(v, k-1) active, the other column
// is stale, and the header records k.
void prepare_checkpointed_file(const std::string& path, VertexId n,
                               std::uint64_t k) {
  auto file = ValueFile::create(path, n, "crashtest");
  ASSERT_TRUE(file.is_ok()) << file.status().to_string();
  ValueFile& vf = file.value();
  for (std::uint64_t completed = 0; completed <= k; ++completed) {
    const unsigned dcol = ValueFile::dispatch_column(completed);
    for (VertexId v = 0; v < n; ++v) {
      vf.store(v, dcol,
               make_slot(flip_payload(v, static_cast<int>(completed) - 1),
                         /*stale=*/false));
      vf.store(v, 1 - dcol, make_slot(0, /*stale=*/true));
    }
    ASSERT_TRUE(vf.checkpoint(completed).is_ok());
  }
}

// Runs `crash_body` in a forked child against its own mapping of `path`,
// then _exit(0) — the mmap writes land in the shared file, everything else
// (header bump, cleanup) is lost exactly as in a real crash.
void crash_in_child(const std::string& path,
                    void (*crash_body)(ValueFile&, VertexId)) {
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: no gtest, no exit handlers — mimic an abrupt crash as closely
    // as a test can.
    auto file = ValueFile::open(path);
    if (file.is_ok()) {
      crash_body(file.value(), file.value().num_vertices());
    }
    ::_exit(0);
  }
  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
  ASSERT_TRUE(WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0);
}

void expect_recovered_to(const std::string& path, std::uint64_t k,
                         VertexId n) {
  const auto report = recover_value_file_at(path);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().resume_superstep, k);
  EXPECT_EQ(report.value().valid_column, ValueFile::dispatch_column(k));
  EXPECT_EQ(report.value().vertices_restored, n);

  auto reopened = ValueFile::open(path);
  ASSERT_TRUE(reopened.is_ok());
  ValueFile& vf = reopened.value();
  const unsigned dcol = ValueFile::dispatch_column(k);
  for (VertexId v = 0; v < n; ++v) {
    const Slot active = vf.load(v, dcol);
    ASSERT_FALSE(slot_is_stale(active)) << "vertex " << v;
    ASSERT_EQ(slot_payload(active), flip_payload(v, static_cast<int>(k) - 1))
        << "vertex " << v;
    const Slot stale = vf.load(v, 1 - dcol);
    ASSERT_TRUE(slot_is_stale(stale)) << "vertex " << v;
    ASSERT_EQ(slot_payload(stale), flip_payload(v, static_cast<int>(k) - 1))
        << "vertex " << v;
  }
}

TEST(ForkCrash, SlotFlushCompletesButHeaderBumpIsLost) {
  // The child plays superstep k to completion — full update-column write,
  // full dispatch-flag consumption, slot msync — and dies exactly between
  // the slot flush and the header bump of checkpoint(k+1). Recovery must
  // resume at k from the dispatch column, discarding the orphaned work.
  constexpr VertexId kVertices = 512;
  constexpr std::uint64_t kCompleted = 3;
  auto dir = ScratchDir::create("forkcrash1");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("crash.values");
  prepare_checkpointed_file(path, kVertices, kCompleted);

  crash_in_child(path, [](ValueFile& vf, VertexId n) {
    const unsigned dcol = ValueFile::dispatch_column(kCompleted);
    const unsigned ucol = ValueFile::update_column(kCompleted);
    for (VertexId v = 0; v < n; ++v) {
      vf.store(v, ucol,
               make_slot(flip_payload(v, static_cast<int>(kCompleted)),
                         /*stale=*/false));
      vf.consume(v, dcol);
    }
    (void)vf.sync();  // the checkpoint's slot flush — then death
  });

  expect_recovered_to(path, kCompleted, kVertices);
}

TEST(ForkCrash, TornMidSuperstepWritesAndPartialFlagConsumption) {
  // The child dies mid-superstep: a random subset of update-column slots
  // written (unsynced), a random subset of dispatch flags consumed. §IV.G's
  // claim under test: flag consumption never corrupts dispatch-column
  // payloads, so recovery reconstructs the last checkpoint exactly.
  constexpr VertexId kVertices = 512;
  constexpr std::uint64_t kCompleted = 2;
  auto dir = ScratchDir::create("forkcrash2");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("crash.values");
  prepare_checkpointed_file(path, kVertices, kCompleted);

  crash_in_child(path, [](ValueFile& vf, VertexId n) {
    const unsigned dcol = ValueFile::dispatch_column(kCompleted);
    const unsigned ucol = ValueFile::update_column(kCompleted);
    Rng rng(kCompleted * 7919 + 13);
    for (VertexId v = 0; v < n; ++v) {
      if (rng.next_bool(0.5)) {
        vf.store(v, ucol,
                 make_slot(static_cast<Payload>(rng.next_below(kPayloadMask)),
                           rng.next_bool(0.3)));
      }
      if (rng.next_bool(0.4)) {
        vf.consume(v, dcol);
      }
    }
    // No sync: whatever the kernel flushed is what the "disk" has.
  });

  expect_recovered_to(path, kCompleted, kVertices);
}

TEST(ForkCrash, RepeatedCrashesAtEverySuperstepStillRecover) {
  // Crash-inject after each of several checkpoints in sequence on the same
  // file: recovery must be idempotent and never lose the last completed
  // superstep, whatever the previous crash left behind.
  constexpr VertexId kVertices = 256;
  auto dir = ScratchDir::create("forkcrash3");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("crash.values");

  for (std::uint64_t k = 0; k <= 4; ++k) {
    prepare_checkpointed_file(path, kVertices, k);
    crash_in_child(path, [](ValueFile& vf, VertexId n) {
      // Consume every other dispatch flag, then die without sync.
      const unsigned dcol =
          ValueFile::dispatch_column(vf.completed_supersteps());
      for (VertexId v = 0; v < n; v += 2) {
        vf.consume(v, dcol);
      }
    });
    expect_recovered_to(path, k, kVertices);
  }
}

// --- 3b. Fork-based crash injection around the CSR preprocessing writer ------
//
// The writer emits the entry file in 64Ki-entry buffered flushes, then the
// .idx offset table. A crash anywhere in that sequence must leave a file
// pair CsrFileReader::open rejects outright — never a silently usable
// half-file — and a clean re-run of preprocessing must fully repair it.

/// Ring-with-chords graph sized to force several entry-buffer flushes
/// (4 entries per vertex with degrees inline; > 3 * 64Ki total).
EdgeList crash_test_graph(VertexId n, VertexId chord) {
  EdgeList edges;
  edges.ensure_vertices(n);
  for (VertexId v = 0; v < n; ++v) {
    edges.add_edge(v, (v + 1) % n);
    edges.add_edge(v, (v + chord) % n);
  }
  return edges;
}

/// Forks a child that runs `body` (expected to _exit mid-write via the
/// csr_file crash hooks) and waits for it.
void crash_csr_writer_in_child(const std::function<void()>& body) {
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    body();
    ::_exit(1);  // the injected crash should have fired before this
  }
  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
  ASSERT_TRUE(WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0);
}

void expect_csr_matches(const std::string& base, const EdgeList& edges) {
  auto reader = CsrFileReader::open(base);
  ASSERT_TRUE(reader.is_ok()) << reader.status().to_string();
  const Csr truth = Csr::from_edges(edges);
  ASSERT_EQ(reader.value().num_vertices(), truth.num_vertices());
  ASSERT_EQ(reader.value().num_edges(), truth.num_edges());
  for (VertexId v = 0; v < truth.num_vertices(); v += 97) {
    const auto record = reader.value().record(v);
    const auto nbrs = truth.neighbors(v);
    ASSERT_EQ(record.out_degree, nbrs.size()) << "vertex " << v;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      ASSERT_EQ(static_cast<VertexId>(record.targets[i]), nbrs[i])
          << "vertex " << v << " edge " << i;
    }
  }
}

TEST(ForkCrash, CsrWriterDiesMidEntryFlushes) {
  // Child dies after its second 64Ki-entry flush: the entry file is a
  // durable torn prefix and no index exists. open() must reject, and a
  // clean preprocessing re-run over the wreckage must fully rebuild.
  constexpr VertexId kVertices = 60'000;  // 240K entries -> several flushes
  auto dir = ScratchDir::create("forkcsr1");
  ASSERT_TRUE(dir.is_ok());
  const std::string base = dir.value().file("graph.csr");
  const EdgeList edges = crash_test_graph(kVertices, 17);

  crash_csr_writer_in_child([&] {
    set_csr_write_crash_after_flushes(1);
    (void)preprocess_edges_to_csr(edges, base, /*with_degree=*/true);
  });

  ASSERT_TRUE(file_exists(base));
  EXPECT_FALSE(CsrFileReader::open(base).is_ok())
      << "torn entry file must not validate";

  ASSERT_TRUE(
      preprocess_edges_to_csr(edges, base, /*with_degree=*/true).is_ok());
  expect_csr_matches(base, edges);
}

TEST(ForkCrash, CsrWriterDiesBeforeIndexRewrite) {
  // The nastiest torn state: a previous build's .idx survives while the
  // entry file was fully rewritten for a *different* graph before the
  // crash. Sizes and endpoints can still line up, so only the reader's
  // per-record validation (degrees, sentinels) stands between this and a
  // silent half-file.
  constexpr VertexId kVertices = 60'000;
  auto dir = ScratchDir::create("forkcsr2");
  ASSERT_TRUE(dir.is_ok());
  const std::string base = dir.value().file("graph.csr");
  const EdgeList old_edges = crash_test_graph(kVertices, 17);
  ASSERT_TRUE(
      preprocess_edges_to_csr(old_edges, base, /*with_degree=*/true).is_ok());

  // Same vertex/edge totals, different degree distribution: vertex 0 takes
  // both chords of vertex 1, so the stale index's record boundaries no
  // longer match the new entry file.
  EdgeList new_edges = old_edges;
  for (Edge& e : new_edges.edges()) {
    if (e.src == 1) {
      e.src = 0;
    }
  }
  crash_csr_writer_in_child([&] {
    set_csr_write_crash_before_index(true);
    (void)preprocess_edges_to_csr(new_edges, base, /*with_degree=*/true);
  });

  EXPECT_FALSE(CsrFileReader::open(base).is_ok())
      << "stale index over a rewritten entry file must not validate";

  ASSERT_TRUE(
      preprocess_edges_to_csr(new_edges, base, /*with_degree=*/true).is_ok());
  expect_csr_matches(base, new_edges);
}

TEST(ForkCrash, CsrWriterCrashAtEveryFlushBoundaryIsNeverSilent) {
  // Sweep the crash point across every flush boundary (and one past the
  // end, where no crash fires): after each wreck, open() either rejects or
  // — only when the writer actually completed — validates fully. There is
  // no third outcome.
  constexpr VertexId kVertices = 60'000;
  const EdgeList edges = crash_test_graph(kVertices, 29);
  for (int crash_after = 0; crash_after <= 4; ++crash_after) {
    auto dir = ScratchDir::create("forkcsr3");
    ASSERT_TRUE(dir.is_ok());
    const std::string base = dir.value().file("graph.csr");
    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      set_csr_write_crash_after_flushes(crash_after);
      const Status status =
          preprocess_edges_to_csr(edges, base, /*with_degree=*/true);
      ::_exit(status.is_ok() ? 0 : 1);
    }
    int wait_status = 0;
    ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
    ASSERT_TRUE(WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0);

    auto reader = CsrFileReader::open(base);
    if (reader.is_ok()) {
      expect_csr_matches(base, edges);  // writer completed before the hook
    } else {
      EXPECT_FALSE(file_exists(base + ".idx"))
          << "crash point " << crash_after
          << ": rejected file pair should lack the index";
    }
  }
}

// --- 4. Chase–Lev work-stealing deque (scheduler substrate) ------------------
//
// The scheduler's per-worker run queues (src/actor/work_stealing_deque.hpp)
// have exactly three racy windows, and each test below parks the threads in
// one of them: owner bottom-end pop vs. thief top-end CAS on the final
// element; steal() reading a retired ring mid-grow; and the empty-steal ABA
// window (thief reads a cell, loses the top_ CAS, and must discard). Every
// test proves the global exactly-once property: each pushed value is
// consumed by precisely one thread.

/// Runs `thieves` stealing threads against one owner executing `owner_fn`.
/// Every value in [0, total) must be consumed exactly once across all
/// threads; `claimed` is validated at the end.
void run_deque_race(WorkStealingDeque<std::uint64_t>& deque,
                    std::uint64_t total, int thieves,
                    const std::function<void(std::atomic<std::int64_t>&,
                                             std::vector<std::atomic<int>>&)>&
                        owner_fn) {
  std::atomic<std::int64_t> remaining{static_cast<std::int64_t>(total)};
  std::vector<std::atomic<int>> claimed(total);
  for (auto& c : claimed) {
    c.store(0, std::memory_order_relaxed);
  }
  std::vector<std::thread> thief_threads;
  thief_threads.reserve(static_cast<std::size_t>(thieves));
  for (int t = 0; t < thieves; ++t) {
    thief_threads.emplace_back([&deque, &remaining, &claimed] {
      while (remaining.load(std::memory_order_acquire) > 0) {
        if (auto v = deque.steal()) {
          EXPECT_EQ(claimed[*v].fetch_add(1, std::memory_order_relaxed), 0)
              << "value " << *v << " stolen twice";
          remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
      }
    });
  }
  owner_fn(remaining, claimed);
  for (auto& t : thief_threads) {
    t.join();
  }
  ASSERT_EQ(remaining.load(), 0);
  for (std::uint64_t v = 0; v < total; ++v) {
    ASSERT_EQ(claimed[v].load(), 1) << "value " << v;
  }
}

TEST(WorkStealingDequeRace, OwnerPopRacesManyThieves) {
  // Owner alternates push bursts with pop drains while thieves hammer the
  // top end; the hot spot is the final-element CAS arbitration between
  // pop() and steal().
  constexpr std::uint64_t kTotal = 100'000 / kScaleDivisor;
  WorkStealingDeque<std::uint64_t> deque(64, std::size_t{1} << 17);
  run_deque_race(deque, kTotal, 3, [&deque](auto& remaining, auto& claimed) {
    std::uint64_t next = 0;
    while (next < kTotal) {
      // Small bursts keep the deque short, so pop and steal collide on the
      // same few elements instead of working disjoint ends.
      for (int i = 0; i < 4 && next < kTotal; ++i) {
        EXPECT_TRUE(deque.push(next++));
      }
      for (int i = 0; i < 3; ++i) {
        if (auto v = deque.pop()) {
          EXPECT_EQ(claimed[*v].fetch_add(1, std::memory_order_relaxed), 0)
              << "value " << *v << " popped twice";
          remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
      }
    }
    while (remaining.load(std::memory_order_acquire) > 0) {
      if (auto v = deque.pop()) {
        EXPECT_EQ(claimed[*v].fetch_add(1, std::memory_order_relaxed), 0);
        remaining.fetch_sub(1, std::memory_order_acq_rel);
      } else {
        std::this_thread::yield();  // thieves are finishing the tail
      }
    }
  });
}

TEST(WorkStealingDequeRace, StealDuringResize) {
  // Tiny initial ring + sustained push pressure: the owner grows the ring
  // many times while thieves hold pointers into retired rings. A steal
  // that reads a stale ring must still return the correct element or lose
  // its CAS — never a torn/wrong value (exactly-once check catches both).
  constexpr std::uint64_t kTotal = 100'000 / kScaleDivisor;
  WorkStealingDeque<std::uint64_t> deque(8, std::size_t{1} << 17);
  run_deque_race(deque, kTotal, 3, [&deque](auto& remaining, auto& claimed) {
    std::uint64_t next = 0;
    while (next < kTotal) {
      // Long bursts against a ring that starts at 8 force repeated growth
      // while the thieves are mid-steal.
      for (int i = 0; i < 512 && next < kTotal; ++i) {
        EXPECT_TRUE(deque.push(next++));
      }
      if (auto v = deque.pop()) {
        EXPECT_EQ(claimed[*v].fetch_add(1, std::memory_order_relaxed), 0);
        remaining.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
    while (remaining.load(std::memory_order_acquire) > 0) {
      if (auto v = deque.pop()) {
        EXPECT_EQ(claimed[*v].fetch_add(1, std::memory_order_relaxed), 0);
        remaining.fetch_sub(1, std::memory_order_acq_rel);
      } else {
        std::this_thread::yield();
      }
    }
  });
}

TEST(WorkStealingDequeRace, EmptyStealAbaWindow) {
  // The deque oscillates between empty and one element, so nearly every
  // steal() lands in the ABA window: read a cell, then find top_ moved.
  // A stale read that *wins* its CAS anyway would double-deliver; the
  // claimed[] check would trip.
  constexpr std::uint64_t kTotal = 80'000 / kScaleDivisor;
  WorkStealingDeque<std::uint64_t> deque(8, 64);
  run_deque_race(deque, kTotal, 4, [&deque](auto& remaining, auto& claimed) {
    std::uint64_t next = 0;
    while (next < kTotal) {
      EXPECT_TRUE(deque.push(next++));
      // Immediately contend for the single element we just made visible.
      if (auto v = deque.pop()) {
        EXPECT_EQ(claimed[*v].fetch_add(1, std::memory_order_relaxed), 0)
            << "value " << *v << " taken twice";
        remaining.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
    while (remaining.load(std::memory_order_acquire) > 0) {
      std::this_thread::yield();
    }
  });
}

// --- 5. Scheduler park/wake under oversubscription ---------------------------

TEST(SchedulerPark, StormOfSingleWakeupsDrainsInBothModes) {
  // Scheduler-level companion to the deque races: isolated enqueues from
  // an external thread against workers that park between messages. Any
  // lost wakeup (parked bit set after the enqueuer's bitmap read, or a
  // cv_ notify racing the wait predicate) deadlocks the final count and
  // trips the ctest timeout.
  for (const SchedulerMode mode :
       {SchedulerMode::kGlobalQueue, SchedulerMode::kWorkStealing}) {
    SCOPED_TRACE(scheduler_mode_name(mode));
    class CountDown final : public Actor<int> {
     public:
      std::atomic<int> seen{0};

     protected:
      void on_message(int) override {
        seen.fetch_add(1, std::memory_order_relaxed);
      }
    };
    constexpr int kMessages = 4'000 / kScaleDivisor;
    ActorSystem system(4, 16, mode);
    auto* actor = system.spawn<CountDown>();
    for (int i = 0; i < kMessages; ++i) {
      actor->send(i);
      if ((i & 15) == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    while (actor->seen.load(std::memory_order_relaxed) < kMessages) {
      std::this_thread::yield();
    }
    system.shutdown();
  }
}

TEST(SchedulerPark, GlobalModeStopRacesSleepingWorkers) {
  // Regression shape for the annotation-audit find in Scheduler::stop():
  // the global-queue path used to notify_all() *after* unlocking, leaving
  // a window where a worker could wake on stopping_, return, and let the
  // scheduler (and its cv_) be destroyed while the stopping thread still
  // held a reference for the notify. Tight create/stop churn with workers
  // that have just parked keeps the destruction racing the notify; TSan
  // flags the use-after-free, and a lost wakeup trips the ctest timeout.
  constexpr int kRounds = 200 / kScaleDivisor;
  for (int round = 0; round < kRounds; ++round) {
    Scheduler scheduler(3, 8, SchedulerMode::kGlobalQueue);
    // No work enqueued: every worker parks on cv_ almost immediately,
    // which is the deepest-sleep shape for the stop broadcast.
    if ((round & 3) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    scheduler.stop();
  }  // ~Scheduler destroys cv_ right behind stop()'s notify
}

TEST(SchedulerPark, IoThreadPoolSubmitStormAgainstTeardown) {
  // Same audit find, I/O flavor: IoThreadPool's destructor and submit()
  // used to notify outside the lock while the destructor path can free
  // the pool as soon as the workers observe stopping_. Submit bursts
  // immediately followed by destruction keep the notify racing teardown.
  constexpr int kRounds = 100 / kScaleDivisor;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> ran{0};
    {
      IoThreadPool pool(2);
      for (int task = 0; task < 8; ++task) {
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    }  // destructor drains: all submitted tasks ran before it returns
    ASSERT_EQ(ran.load(std::memory_order_relaxed), 8);
  }
}

// --- 6. Batch-aware steal sizing ---------------------------------------------
//
// try_steal migrates up to half of a victim's backlog per episode, but only
// when the backlog is at least kStealBatchMinDepth deep; shallow victims
// give up exactly one unit. The two tests pin both sides of that contract
// under the same exactly-once discipline as the deque races above, and
// under TSan they additionally race the extras' single-unit CAS path
// against the owner's pop.

/// Leaf unit: spins briefly (so backlogs stay observable), bumps a counter,
/// goes idle.
class StealLeaf final : public Schedulable {
 public:
  explicit StealLeaf(std::atomic<int>& done) : done_(done) {}

  bool execute_batch(std::size_t /*max_messages*/) override {
    volatile int sink = 0;
    for (int spin = 0; spin < 2'000; ++spin) {
      sink = spin;  // volatile store: the spin cannot be optimized away
    }
    static_cast<void>(sink);
    done_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

 private:
  std::atomic<int>& done_;
};

/// Flood unit: enqueues every leaf from worker context in one burst, so
/// they land on the executing worker's own deque and build a deep backlog.
/// It then holds its worker hostage with a bounded wait: while it occupies
/// the worker, the deque's owner end cannot drain, so the backlog stays
/// deep until a woken thief actually gets scheduled — without this, a
/// loaded machine can let the owner consume all 384 leaves before any
/// thief wakes, and the test would race the OS scheduler instead of
/// testing the batching policy.
class StealFlooder final : public Schedulable {
 public:
  StealFlooder(Scheduler& scheduler, std::deque<StealLeaf>& leaves,
               std::atomic<int>& done)
      : scheduler_(scheduler),
        leaves_(leaves),
        done_(done),
        extras_baseline_(scheduler.steal_extras_migrated()) {}

  bool execute_batch(std::size_t /*max_messages*/) override {
    for (StealLeaf& leaf : leaves_) {
      scheduler_.enqueue(&leaf);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
    while (scheduler_.steal_extras_migrated() == extras_baseline_ &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    done_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

 private:
  Scheduler& scheduler_;
  std::deque<StealLeaf>& leaves_;
  std::atomic<int>& done_;
  const std::uint64_t extras_baseline_;
};

TEST(StealSizing, DeepBacklogsMigrateBatchedExtras) {
  // One worker floods its own deque with a few hundred leaves while three
  // idle workers steal. Depth far exceeds the batching threshold, so some
  // steal episode must migrate extras; a couple of rounds absorb the rare
  // schedule where the flooder drains its own deque before any thief
  // arrives.
  constexpr int kLeaves = 384;
  constexpr int kMaxRounds = 10;
  Scheduler scheduler(4, 1, SchedulerMode::kWorkStealing);
  for (int round = 0;
       round < kMaxRounds && scheduler.steal_extras_migrated() == 0;
       ++round) {
    std::atomic<int> done{0};
    // deque: Schedulable's slice bookkeeping atomics make units
    // non-copyable, and deque::emplace_back never relocates elements.
    std::deque<StealLeaf> leaves;
    for (int i = 0; i < kLeaves; ++i) {
      leaves.emplace_back(done);
    }
    StealFlooder flooder(scheduler, leaves, done);
    scheduler.enqueue(&flooder);
    while (done.load(std::memory_order_acquire) < kLeaves + 1) {
      std::this_thread::yield();
    }
  }
  EXPECT_GT(scheduler.steal_extras_migrated(), 0u);
  EXPECT_GT(scheduler.steals_executed(), 0u);
  scheduler.stop();
}

/// Drip unit: enqueues exactly two leaves per execution, so no deque is
/// ever deeper than two when a thief inspects it.
class StealDripper final : public Schedulable {
 public:
  StealDripper(Scheduler& scheduler, std::deque<StealLeaf>& leaves,
               std::atomic<int>& done)
      : scheduler_(scheduler), leaves_(leaves), done_(done) {}

  bool execute_batch(std::size_t /*max_messages*/) override {
    scheduler_.enqueue(&leaves_[0]);
    scheduler_.enqueue(&leaves_[1]);
    done_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

 private:
  Scheduler& scheduler_;
  std::deque<StealLeaf>& leaves_;
  std::atomic<int>& done_;
};

TEST(StealSizing, ShallowBacklogsNeverMigrateExtras) {
  // The dripper's deque holds at most its two leaves (the dripper itself
  // is never re-enqueued), which is below kStealBatchMinDepth — so steals
  // may happen, but the extras counter must stay at zero for the whole
  // run. A false batch here is exactly the small-graph steal churn the
  // depth gate exists to prevent.
  constexpr int kRounds = 300 / kScaleDivisor + 10;
  Scheduler scheduler(3, 1, SchedulerMode::kWorkStealing);
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> done{0};
    std::deque<StealLeaf> leaves;
    leaves.emplace_back(done);
    leaves.emplace_back(done);
    StealDripper dripper(scheduler, leaves, done);
    scheduler.enqueue(&dripper);
    while (done.load(std::memory_order_acquire) < 3) {
      std::this_thread::yield();
    }
    ASSERT_EQ(scheduler.steal_extras_migrated(), 0u) << "round " << round;
  }
  scheduler.stop();
}

// --- 7. Job-namespace despawn races ------------------------------------------
//
// GraphService retires a finished job's actor group with
// ActorSystem::despawn_job while other jobs keep executing on the same
// scheduler. The quiescence protocol (scheduler.hpp slice brackets +
// Schedulable::quiescent) must guarantee no worker still holds — or can
// re-acquire — a pointer into the freed group. A protocol hole here is a
// use-after-free that only an interleaving-heavy shape surfaces, so these
// run in the sanitizer matrix (ASan catches the freed access, TSan the
// racing claim).

/// Counts messages into an external atomic (it outlives the actor).
class DespawnCounter final : public Actor<int> {
 public:
  explicit DespawnCounter(std::atomic<int>& hits) : hits_(hits) {}

 protected:
  void on_message(int) override {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<int>& hits_;
};

/// Self-perpetuating resident: every delivery re-sends, so its job keeps
/// slices in flight on the shared workers for the whole test.
class DespawnResident final : public Actor<int> {
 public:
  std::atomic<std::uint64_t> pings{0};
  std::atomic<bool> stop{false};

 protected:
  void on_message(int v) override {
    pings.fetch_add(1, std::memory_order_relaxed);
    if (!stop.load(std::memory_order_relaxed)) {
      send(v + 1);
    }
  }
};

TEST(JobDespawn, ChurnAgainstResidentJobFreesNoLiveActor) {
  // Several threads spawn short-lived jobs (each under its own tag, per
  // the one-despawner-per-job contract), flood them, and despawn them
  // while a resident job keeps every worker busy. despawn_job must drain
  // each group — after it returns, every message sent to the group has
  // been counted and the memory is gone.
  constexpr int kChurners = 3;
  constexpr int kIterations = 60 / kScaleDivisor;
  constexpr int kActorsPerJob = 3;
  constexpr int kMessagesPerActor = 40;
  ActorSystem system(4, 16, SchedulerMode::kWorkStealing);
  auto* resident = system.spawn_in_job<DespawnResident>(1);
  resident->send(0);

  std::vector<std::thread> churners;
  churners.reserve(kChurners);
  for (int c = 0; c < kChurners; ++c) {
    churners.emplace_back([&system, c] {
      for (int iter = 0; iter < kIterations; ++iter) {
        const std::uint32_t job =
            2 + static_cast<std::uint32_t>(c) * kIterations +
            static_cast<std::uint32_t>(iter);
        std::atomic<int> hits{0};
        std::vector<DespawnCounter*> group;
        group.reserve(kActorsPerJob);
        for (int a = 0; a < kActorsPerJob; ++a) {
          group.push_back(system.spawn_in_job<DespawnCounter>(job, hits));
        }
        for (DespawnCounter* actor : group) {
          for (int m = 0; m < kMessagesPerActor; ++m) {
            actor->send(m);
          }
        }
        // No drain barrier: despawn_job itself must wait out the backlog
        // (a non-empty mailbox keeps the actor non-idle, hence
        // non-quiescent).
        system.despawn_job(job);
        EXPECT_EQ(hits.load(std::memory_order_relaxed),
                  kActorsPerJob * kMessagesPerActor)
            << "churner " << c << " iteration " << iter;
      }
    });
  }
  for (auto& t : churners) {
    t.join();
  }

  // The resident job survived the churn and is still making progress.
  const std::uint64_t before = resident->pings.load(std::memory_order_relaxed);
  while (resident->pings.load(std::memory_order_relaxed) == before) {
    std::this_thread::yield();
  }
  resident->stop.store(true, std::memory_order_relaxed);
  system.shutdown();
}

/// Parks inside its slice long enough for the main thread to observably
/// race despawn_job against the in-flight execution.
class SlowSliceActor final : public Actor<int> {
 public:
  SlowSliceActor(std::atomic<bool>& entered, std::atomic<int>& completed)
      : entered_(entered), completed_(completed) {}

 protected:
  void on_message(int) override {
    entered_.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    completed_.fetch_add(1);
  }

 private:
  std::atomic<bool>& entered_;
  std::atomic<int>& completed_;
};

TEST(JobDespawn, DespawnBlocksUntilInFlightSliceCompletes) {
  // The despawner arrives while a worker is provably inside the victim's
  // execute_batch (entered_ set, slice sleep still running). The slice
  // brackets make the group non-quiescent, so despawn_job must block;
  // returning early would free the actor under the worker's feet (the
  // pending completed_ bump would then write through a freed `this`).
  constexpr int kRounds = 20 / kScaleDivisor + 2;
  ActorSystem system(2, 16, SchedulerMode::kWorkStealing);
  for (int round = 0; round < kRounds; ++round) {
    const std::uint32_t job = 1 + static_cast<std::uint32_t>(round);
    std::atomic<bool> entered{false};
    std::atomic<int> completed{0};
    auto* actor = system.spawn_in_job<SlowSliceActor>(job, entered, completed);
    actor->send(0);
    while (!entered.load()) {
      std::this_thread::yield();
    }
    system.despawn_job(job);
    ASSERT_EQ(completed.load(), 1) << "round " << round;
  }
  system.shutdown();
}

// --- Runtime lockdep cross-check (DESIGN.md §15) ------------------------
//
// The static lock-order checker (scripts/gpsa_analyze.py) and the runtime
// lockdep mode validate each other: the analyzer proves the annotated
// tree is cycle-free on paper, lockdep proves the paths that actually
// execute agree. These tests pin the runtime half: a deliberate AB/BA
// inversion must abort naming both locks, and a heavily contended but
// consistently ordered workload must stay quiet while still accreting
// order edges. The TSan CI leg runs the whole suite with GPSA_LOCKDEP=1,
// so every other test in this binary doubles as lockdep true-negative
// coverage there.

TEST(Lockdep, DeliberateInversionAbortsNamingBothLocks) {
  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: route stderr into the pipe so the parent can assert on the
    // report, then run the textbook inversion. The second block must
    // abort before _exit is reached.
    ::dup2(pipefd[1], 2);
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    lockdep::enable_for_testing(true);
    Mutex alpha{"Test.alpha"};
    Mutex beta{"Test.beta"};
    {
      MutexLock a(alpha);
      MutexLock b(beta);  // order edge Test.alpha -> Test.beta
    }
    {
      MutexLock b(beta);
      MutexLock a(alpha);  // inversion: lockdep aborts here
    }
    ::_exit(0);
  }
  ::close(pipefd[1]);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
  std::string report;
  char buf[512];
  for (ssize_t n = 0; (n = ::read(pipefd[0], buf, sizeof(buf))) > 0;) {
    report.append(buf, static_cast<std::size_t>(n));
  }
  ::close(pipefd[0]);
  ASSERT_TRUE(WIFSIGNALED(wait_status))
      << "child exited normally; lockdep did not fire: " << report;
  EXPECT_EQ(WTERMSIG(wait_status), SIGABRT) << report;
  EXPECT_NE(report.find("Test.alpha"), std::string::npos) << report;
  EXPECT_NE(report.find("Test.beta"), std::string::npos) << report;
  EXPECT_NE(report.find("lock-order"), std::string::npos) << report;
}

TEST(Lockdep, RecursiveAcquisitionAborts) {
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    ::close(2);  // the report is asserted on in the inversion test
    lockdep::enable_for_testing(true);
    Mutex gate{"Test.gate"};
    gate.lock();
    gate.lock();  // self-deadlock: lockdep aborts instead of hanging
    ::_exit(0);
  }
  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wait_status))
      << "recursive lock() neither aborted nor hung";
  EXPECT_EQ(WTERMSIG(wait_status), SIGABRT);
}

TEST(Lockdep, ConsistentOrderUnderContentionStaysQuiet) {
  // True negative: many threads hammer the same two locks in one global
  // order. Lockdep must record the edge once and never fire; under the
  // TSan leg this also races the held-stack bookkeeping itself.
  lockdep::enable_for_testing(true);
  const std::uint64_t edges_before = lockdep::edges_recorded();
  {
    Mutex outer{"Test.outer"};
    Mutex inner{"Test.inner"};
    std::atomic<int> total{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 2000; ++i) {
          MutexLock a(outer);
          MutexLock b(inner);
          total.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    EXPECT_EQ(total.load(), 8 * 2000);
  }
  EXPECT_GE(lockdep::edges_recorded(), edges_before + 1);
  lockdep::enable_for_testing(false);
}

}  // namespace
}  // namespace gpsa
