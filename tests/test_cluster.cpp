// Tests for the simulated distributed engine: correctness across node
// counts (location transparency), communication accounting, load balance
// of the two partitioning strategies, and crash consistency of the
// per-node value stores (fork-based checkpoint crash injection).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/pagerank.hpp"
#include "apps/reference.hpp"
#include "cluster/cluster_engine.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "platform/file_util.hpp"
#include "test_support.hpp"

namespace gpsa {
namespace {

using testing::expect_float_payloads_near;
using testing::expect_payloads_equal;

class ClusterNodeCountTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ClusterNodeCountTest, BfsMatchesReferenceOnAnyClusterSize) {
  const unsigned nodes = GetParam();
  const EdgeList graph = rmat(8, 2000, 91);
  const BfsProgram program(0);
  ClusterOptions co;
  co.num_nodes = nodes;
  co.scheduler_workers = 2;
  const auto result = ClusterEngine::run(graph, program, co);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(result.value().values, ref.values);
  EXPECT_EQ(result.value().total_messages, ref.total_messages);
  EXPECT_TRUE(result.value().converged);
}

TEST_P(ClusterNodeCountTest, CcMatchesReferenceOnAnyClusterSize) {
  const unsigned nodes = GetParam();
  const EdgeList graph = erdos_renyi(300, 800, 93);
  const ConnectedComponentsProgram program;
  ClusterOptions co;
  co.num_nodes = nodes;
  co.scheduler_workers = 2;
  const auto result = ClusterEngine::run(graph, program, co);
  ASSERT_TRUE(result.is_ok());
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(result.value().values, ref.values);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, ClusterNodeCountTest,
                         ::testing::Values(1U, 2U, 3U, 5U, 8U));

TEST(Cluster, PageRankMatchesReference) {
  const EdgeList graph = rmat(8, 2500, 95);
  const PageRankProgram program(5);
  ClusterOptions co;
  co.num_nodes = 4;
  co.scheduler_workers = 2;
  const auto result = ClusterEngine::run(graph, program, co);
  ASSERT_TRUE(result.is_ok());
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_float_payloads_near(result.value().values, ref.values);
}

TEST(Cluster, WorklistMatchesSweep) {
  // Node-local bitmaps must reproduce the sweep's dispatch set exactly
  // (activation state never crosses nodes — the message carries it).
  const EdgeList graph = rmat(8, 2000, 91);
  const BfsProgram bfs(0);
  const ConnectedComponentsProgram cc;
  const Program* const programs[] = {&bfs, &cc};
  for (const Program* program : programs) {
    ClusterOptions co;
    co.num_nodes = 3;
    co.scheduler_workers = 2;
    co.exec = ExecMode::kSweep;
    const auto sweep = ClusterEngine::run(graph, *program, co);
    co.exec = ExecMode::kWorklist;
    const auto worklist = ClusterEngine::run(graph, *program, co);
    ASSERT_TRUE(sweep.is_ok() && worklist.is_ok());
    SCOPED_TRACE(program->name());
    expect_payloads_equal(worklist.value().values, sweep.value().values);
    EXPECT_EQ(worklist.value().total_messages, sweep.value().total_messages);
    EXPECT_EQ(worklist.value().supersteps, sweep.value().supersteps);
  }
}

TEST(Cluster, ZeroBudgetRunsZeroSupersteps) {
  // A zero superstep budget (program cap 0) must halt before the first
  // superstep, not after it — the manager used to run one superstep
  // before its budget check.
  const EdgeList graph = chain(16);
  ClusterOptions co;
  co.num_nodes = 2;
  co.scheduler_workers = 2;
  const auto result = ClusterEngine::run(graph, PageRankProgram(0), co);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().supersteps, 0U);
  EXPECT_EQ(result.value().total_messages, 0U);
  EXPECT_FALSE(result.value().converged);
}

TEST(Cluster, OptionCapZeroMeansUncappedAndSmallerCapWins) {
  const EdgeList graph = chain(16);
  ClusterOptions co;
  co.num_nodes = 2;
  co.scheduler_workers = 2;
  co.max_supersteps = 0;  // uncapped: BFS runs the chain down
  const auto uncapped = ClusterEngine::run(graph, BfsProgram(0), co);
  ASSERT_TRUE(uncapped.is_ok());
  EXPECT_TRUE(uncapped.value().converged);
  EXPECT_EQ(uncapped.value().supersteps, 16U);

  co.max_supersteps = 10;  // program cap 3 is smaller and wins
  const auto capped = ClusterEngine::run(graph, PageRankProgram(3), co);
  ASSERT_TRUE(capped.is_ok());
  EXPECT_EQ(capped.value().supersteps, 3U);

  co.max_supersteps = 1;  // option cap 1 is smaller and wins
  const auto one = ClusterEngine::run(graph, BfsProgram(0), co);
  ASSERT_TRUE(one.is_ok());
  EXPECT_EQ(one.value().supersteps, 1U);
  EXPECT_FALSE(one.value().converged);
}

TEST(Cluster, SingleNodeHasNoRemoteTraffic) {
  const EdgeList graph = rmat(7, 800, 97);
  ClusterOptions co;
  co.num_nodes = 1;
  co.scheduler_workers = 1;
  const auto result = ClusterEngine::run(graph, BfsProgram(0), co);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().remote_messages, 0U);
  EXPECT_EQ(result.value().remote_batches, 0U);
  EXPECT_EQ(result.value().modeled_network_seconds, 0.0);
}

TEST(Cluster, RemoteTrafficGrowsWithNodeCount) {
  const EdgeList graph = rmat(9, 6000, 99);
  const PageRankProgram program(3);
  std::uint64_t previous = 0;
  for (const unsigned nodes : {2U, 4U, 8U}) {
    ClusterOptions co;
    co.num_nodes = nodes;
    co.scheduler_workers = 2;
    const auto result = ClusterEngine::run(graph, program, co);
    ASSERT_TRUE(result.is_ok());
    EXPECT_GT(result.value().remote_messages, previous);
    EXPECT_LE(result.value().remote_messages,
              result.value().total_messages);
    previous = result.value().remote_messages;
  }
}

TEST(Cluster, AccountingSumsAreConsistent) {
  const EdgeList graph = rmat(8, 1500, 101);
  ClusterOptions co;
  co.num_nodes = 3;
  co.scheduler_workers = 2;
  const auto result = ClusterEngine::run(graph, PageRankProgram(4), co);
  ASSERT_TRUE(result.is_ok());
  const ClusterRunResult& r = result.value();
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (std::size_t i = 0; i < r.node_messages_sent.size(); ++i) {
    sent += r.node_messages_sent[i];
    received += r.node_messages_received[i];
  }
  EXPECT_EQ(sent, r.total_messages);
  EXPECT_EQ(received, r.total_messages);
}

TEST(Cluster, EdgeBalancedPartitioningReducesSendImbalance) {
  // Heavily skewed graph: vertex 0 owns most out-edges, so uniform
  // intervals overload node 0's dispatcher.
  EdgeList graph = star(4000);
  const ConnectedComponentsProgram program;
  double uniform_imbalance = 0.0;
  double balanced_imbalance = 0.0;
  for (const auto strategy : {PartitionStrategy::kUniformVertices,
                              PartitionStrategy::kBalancedEdges}) {
    ClusterOptions co;
    co.num_nodes = 4;
    co.partition = strategy;
    co.scheduler_workers = 2;
    const auto result = ClusterEngine::run(graph, program, co);
    ASSERT_TRUE(result.is_ok());
    if (strategy == PartitionStrategy::kUniformVertices) {
      uniform_imbalance = result.value().send_imbalance();
    } else {
      balanced_imbalance = result.value().send_imbalance();
    }
  }
  EXPECT_LT(balanced_imbalance, uniform_imbalance);
}

// Runs a file-backed cluster BFS in a forked child that dies between the
// per-node checkpoint flushes (after `crash_after` nodes flushed), leaving
// the surviving headers for the parent to validate.
void run_cluster_crash_child(const std::string& dir, int crash_after,
                             std::optional<ExecMode> exec = std::nullopt) {
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: no gtest asserts, no exit handlers — _exit() fires inside
    // the engine's checkpoint sweep, mimicking an abrupt crash.
    set_cluster_checkpoint_crash_after_flushes(crash_after);
    const EdgeList graph = rmat(8, 2000, 91);
    ClusterOptions co;
    co.num_nodes = 3;
    co.scheduler_workers = 2;
    co.value_store_dir = dir;
    co.exec = exec;
    (void)ClusterEngine::run(graph, BfsProgram(0), co);
    ::_exit(1);  // not reached: the crash hook exits first
  }
  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
  ASSERT_TRUE(WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0);
}

TEST(ClusterCrash, FileBackedRunCheckpointsEveryNodeStore) {
  auto dir = ScratchDir::create("cluster_ckpt");
  ASSERT_TRUE(dir.is_ok());
  const EdgeList graph = rmat(8, 2000, 91);
  ClusterOptions co;
  co.num_nodes = 3;
  co.scheduler_workers = 2;
  co.value_store_dir = dir.value().file("stores");
  const auto result = ClusterEngine::run(graph, BfsProgram(0), co);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const auto common = ClusterEngine::validate_value_stores(
      co.value_store_dir, co.num_nodes, "bfs");
  ASSERT_TRUE(common.is_ok()) << common.status().to_string();
  EXPECT_EQ(common.value(), result.value().supersteps);
}

TEST(ClusterCrash, ValidateRejectsTornCheckpointSweep) {
  auto dir = ScratchDir::create("cluster_torn");
  ASSERT_TRUE(dir.is_ok());
  const std::string stores = dir.value().file("stores");
  // Crash after node 0's checkpoint flushed but before node 1's: node 0's
  // header records the finished run, nodes 1..2 still say 0.
  run_cluster_crash_child(stores, /*crash_after=*/1);
  const auto torn = ClusterEngine::validate_value_stores(stores, 3, "bfs");
  ASSERT_FALSE(torn.is_ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kCorruptData);
  EXPECT_NE(torn.status().to_string().find("torn"), std::string::npos)
      << torn.status().to_string();
}

TEST(ClusterCrash, WorklistRunLeavesSameTornStateAsSweep) {
  // The checkpoint sweep and its torn-state detection are independent of
  // the execution mode: a worklist run crashing between per-node flushes
  // must be rejected exactly like a sweep run's.
  for (const ExecMode exec : {ExecMode::kSweep, ExecMode::kWorklist}) {
    auto dir = ScratchDir::create("cluster_torn_exec");
    ASSERT_TRUE(dir.is_ok());
    const std::string stores = dir.value().file("stores");
    run_cluster_crash_child(stores, /*crash_after=*/1, exec);
    const auto torn = ClusterEngine::validate_value_stores(stores, 3, "bfs");
    ASSERT_FALSE(torn.is_ok()) << exec_mode_name(exec);
    EXPECT_EQ(torn.status().code(), StatusCode::kCorruptData);
  }
}

TEST(ClusterCrash, WorklistFileBackedRunCheckpointsEveryNodeStore) {
  auto dir = ScratchDir::create("cluster_ckpt_wl");
  ASSERT_TRUE(dir.is_ok());
  const EdgeList graph = rmat(8, 2000, 91);
  ClusterOptions co;
  co.num_nodes = 3;
  co.scheduler_workers = 2;
  co.value_store_dir = dir.value().file("stores");
  co.exec = ExecMode::kWorklist;
  const auto result = ClusterEngine::run(graph, BfsProgram(0), co);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ReferenceResult ref =
      reference_run(Csr::from_edges(graph), BfsProgram(0));
  expect_payloads_equal(result.value().values, ref.values);
  const auto common = ClusterEngine::validate_value_stores(
      co.value_store_dir, co.num_nodes, "bfs");
  ASSERT_TRUE(common.is_ok()) << common.status().to_string();
  EXPECT_EQ(common.value(), result.value().supersteps);
}

TEST(ClusterCrash, CrashBeforeAnyFlushRollsBackToEpochZero) {
  auto dir = ScratchDir::create("cluster_epoch0");
  ASSERT_TRUE(dir.is_ok());
  const std::string stores = dir.value().file("stores");
  // Crash before the first per-node flush: every header still reads 0
  // completed supersteps — a consistent (fully rolled-back) cluster
  // epoch, so validation accepts it and recovery restarts from scratch.
  run_cluster_crash_child(stores, /*crash_after=*/0);
  const auto common = ClusterEngine::validate_value_stores(stores, 3, "bfs");
  ASSERT_TRUE(common.is_ok()) << common.status().to_string();
  EXPECT_EQ(common.value(), 0U);
}

TEST(ClusterCrash, ValidateRejectsWrongAppTagAndMissingNodes) {
  auto dir = ScratchDir::create("cluster_tag");
  ASSERT_TRUE(dir.is_ok());
  const EdgeList graph = rmat(8, 2000, 91);
  ClusterOptions co;
  co.num_nodes = 2;
  co.scheduler_workers = 2;
  co.value_store_dir = dir.value().file("stores");
  ASSERT_TRUE(ClusterEngine::run(graph, BfsProgram(0), co).is_ok());
  // Stores were written by BFS; a CC run must not resume from them.
  const auto wrong_tag =
      ClusterEngine::validate_value_stores(co.value_store_dir, 2, "cc");
  ASSERT_FALSE(wrong_tag.is_ok());
  EXPECT_EQ(wrong_tag.status().code(), StatusCode::kCorruptData);
  // A 4-node validation of a 2-node run finds nodes 2..3 missing — the
  // same shape as a crash during store creation.
  const auto missing =
      ClusterEngine::validate_value_stores(co.value_store_dir, 4, "bfs");
  ASSERT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kCorruptData);
}

TEST(Cluster, RejectsBadOptions) {
  const EdgeList graph = chain(8);
  ClusterOptions co;
  co.num_nodes = 0;
  EXPECT_FALSE(ClusterEngine::run(graph, BfsProgram(0), co).is_ok());
  const EdgeList empty;
  EXPECT_FALSE(ClusterEngine::run(empty, BfsProgram(0), {}).is_ok());
}

}  // namespace
}  // namespace gpsa
