// Tests for the simulated distributed engine: correctness across node
// counts (location transparency), communication accounting, and load
// balance of the two partitioning strategies.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/pagerank.hpp"
#include "apps/reference.hpp"
#include "cluster/cluster_engine.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "test_support.hpp"

namespace gpsa {
namespace {

using testing::expect_float_payloads_near;
using testing::expect_payloads_equal;

class ClusterNodeCountTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ClusterNodeCountTest, BfsMatchesReferenceOnAnyClusterSize) {
  const unsigned nodes = GetParam();
  const EdgeList graph = rmat(8, 2000, 91);
  const BfsProgram program(0);
  ClusterOptions co;
  co.num_nodes = nodes;
  co.scheduler_workers = 2;
  const auto result = ClusterEngine::run(graph, program, co);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(result.value().values, ref.values);
  EXPECT_EQ(result.value().total_messages, ref.total_messages);
  EXPECT_TRUE(result.value().converged);
}

TEST_P(ClusterNodeCountTest, CcMatchesReferenceOnAnyClusterSize) {
  const unsigned nodes = GetParam();
  const EdgeList graph = erdos_renyi(300, 800, 93);
  const ConnectedComponentsProgram program;
  ClusterOptions co;
  co.num_nodes = nodes;
  co.scheduler_workers = 2;
  const auto result = ClusterEngine::run(graph, program, co);
  ASSERT_TRUE(result.is_ok());
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(result.value().values, ref.values);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, ClusterNodeCountTest,
                         ::testing::Values(1U, 2U, 3U, 5U, 8U));

TEST(Cluster, PageRankMatchesReference) {
  const EdgeList graph = rmat(8, 2500, 95);
  const PageRankProgram program(5);
  ClusterOptions co;
  co.num_nodes = 4;
  co.scheduler_workers = 2;
  const auto result = ClusterEngine::run(graph, program, co);
  ASSERT_TRUE(result.is_ok());
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_float_payloads_near(result.value().values, ref.values);
}

TEST(Cluster, SingleNodeHasNoRemoteTraffic) {
  const EdgeList graph = rmat(7, 800, 97);
  ClusterOptions co;
  co.num_nodes = 1;
  co.scheduler_workers = 1;
  const auto result = ClusterEngine::run(graph, BfsProgram(0), co);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().remote_messages, 0U);
  EXPECT_EQ(result.value().remote_batches, 0U);
  EXPECT_EQ(result.value().modeled_network_seconds, 0.0);
}

TEST(Cluster, RemoteTrafficGrowsWithNodeCount) {
  const EdgeList graph = rmat(9, 6000, 99);
  const PageRankProgram program(3);
  std::uint64_t previous = 0;
  for (const unsigned nodes : {2U, 4U, 8U}) {
    ClusterOptions co;
    co.num_nodes = nodes;
    co.scheduler_workers = 2;
    const auto result = ClusterEngine::run(graph, program, co);
    ASSERT_TRUE(result.is_ok());
    EXPECT_GT(result.value().remote_messages, previous);
    EXPECT_LE(result.value().remote_messages,
              result.value().total_messages);
    previous = result.value().remote_messages;
  }
}

TEST(Cluster, AccountingSumsAreConsistent) {
  const EdgeList graph = rmat(8, 1500, 101);
  ClusterOptions co;
  co.num_nodes = 3;
  co.scheduler_workers = 2;
  const auto result = ClusterEngine::run(graph, PageRankProgram(4), co);
  ASSERT_TRUE(result.is_ok());
  const ClusterRunResult& r = result.value();
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (std::size_t i = 0; i < r.node_messages_sent.size(); ++i) {
    sent += r.node_messages_sent[i];
    received += r.node_messages_received[i];
  }
  EXPECT_EQ(sent, r.total_messages);
  EXPECT_EQ(received, r.total_messages);
}

TEST(Cluster, EdgeBalancedPartitioningReducesSendImbalance) {
  // Heavily skewed graph: vertex 0 owns most out-edges, so uniform
  // intervals overload node 0's dispatcher.
  EdgeList graph = star(4000);
  const ConnectedComponentsProgram program;
  double uniform_imbalance = 0.0;
  double balanced_imbalance = 0.0;
  for (const auto strategy : {PartitionStrategy::kUniformVertices,
                              PartitionStrategy::kBalancedEdges}) {
    ClusterOptions co;
    co.num_nodes = 4;
    co.partition = strategy;
    co.scheduler_workers = 2;
    const auto result = ClusterEngine::run(graph, program, co);
    ASSERT_TRUE(result.is_ok());
    if (strategy == PartitionStrategy::kUniformVertices) {
      uniform_imbalance = result.value().send_imbalance();
    } else {
      balanced_imbalance = result.value().send_imbalance();
    }
  }
  EXPECT_LT(balanced_imbalance, uniform_imbalance);
}

TEST(Cluster, RejectsBadOptions) {
  const EdgeList graph = chain(8);
  ClusterOptions co;
  co.num_nodes = 0;
  EXPECT_FALSE(ClusterEngine::run(graph, BfsProgram(0), co).is_ok());
  const EdgeList empty;
  EXPECT_FALSE(ClusterEngine::run(empty, BfsProgram(0), {}).is_ok());
}

}  // namespace
}  // namespace gpsa
