// Shared helpers for the test suites.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/edge_list.hpp"
#include "storage/slot.hpp"

namespace gpsa::testing {

/// Compares integer payload vectors exactly, reporting the first diff.
inline void expect_payloads_equal(const std::vector<Payload>& actual,
                                  const std::vector<Payload>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t v = 0; v < actual.size(); ++v) {
    ASSERT_EQ(actual[v], expected[v]) << "vertex " << v;
  }
}

/// Compares float-payload vectors within a relative tolerance (fold order
/// differs across engines).
inline void expect_float_payloads_near(const std::vector<Payload>& actual,
                                       const std::vector<Payload>& expected,
                                       double rel_tol = 1e-4) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t v = 0; v < actual.size(); ++v) {
    const double a = payload_to_float(actual[v]);
    const double e = payload_to_float(expected[v]);
    const double scale = std::max({std::fabs(a), std::fabs(e), 1e-12});
    ASSERT_LE(std::fabs(a - e) / scale, rel_tol)
        << "vertex " << v << ": " << a << " vs " << e;
  }
}

/// Small fixed digraph used across suites:
///
///   0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 4, 5 isolated
inline EdgeList diamond_graph() {
  EdgeList g;
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.ensure_vertices(6);
  return g;
}

}  // namespace gpsa::testing
