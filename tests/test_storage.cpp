// Unit tests for the storage substrate: slot encoding (the paper's MSB
// flag protocol), the two-column value file, column-role alternation,
// checkpointing, and crash recovery (§IV.G).
#include <gtest/gtest.h>

#include "platform/file_util.hpp"
#include "storage/recovery.hpp"
#include "storage/slot.hpp"
#include "storage/value_file.hpp"

namespace gpsa {
namespace {

// --- Slot encoding -----------------------------------------------------------

TEST(Slot, FlagRoundTrip) {
  const Slot s = make_slot(12345, /*stale=*/true);
  EXPECT_TRUE(slot_is_stale(s));
  EXPECT_EQ(slot_payload(s), 12345U);
  const Slot cleared = slot_clear_stale(s);
  EXPECT_FALSE(slot_is_stale(cleared));
  EXPECT_EQ(slot_payload(cleared), 12345U);
  EXPECT_TRUE(slot_is_stale(slot_set_stale(cleared)));
}

TEST(Slot, PayloadMaskKeepsLow31Bits) {
  const Slot s = make_slot(0xffff'ffffU, /*stale=*/false);
  EXPECT_EQ(slot_payload(s), kPayloadMask);
  EXPECT_FALSE(slot_is_stale(s));
}

TEST(Slot, FloatPayloadsSurviveRoundTrip) {
  for (float f : {0.0F, 1.0F, 0.15F, 1.0F / 3.0F, 1e-30F, 2.5e20F}) {
    const Payload p = float_to_payload(f);
    EXPECT_EQ(payload_to_float(p), f) << f;
    // The flag bit must not disturb the payload (sign bit is free for
    // non-negative floats — the paper's trick).
    EXPECT_EQ(payload_to_float(slot_payload(make_slot(p, true))), f);
  }
}

TEST(Slot, InfinityIsMaxPayload) {
  EXPECT_EQ(kPayloadInfinity, 0x7fff'ffffU);
  EXPECT_FALSE(slot_is_stale(make_slot(kPayloadInfinity, false)));
}

// --- Column roles ------------------------------------------------------------

TEST(ValueFile, ColumnRolesAlternate) {
  EXPECT_EQ(ValueFile::dispatch_column(0), 0U);
  EXPECT_EQ(ValueFile::update_column(0), 1U);
  EXPECT_EQ(ValueFile::dispatch_column(1), 1U);
  EXPECT_EQ(ValueFile::update_column(1), 0U);
  // The column written in superstep s is dispatched in s+1.
  for (std::uint64_t s = 0; s < 8; ++s) {
    EXPECT_EQ(ValueFile::update_column(s), ValueFile::dispatch_column(s + 1));
  }
}

// --- ValueFile ---------------------------------------------------------------

class ValueFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = ScratchDir::create("vf");
    ASSERT_TRUE(dir.is_ok());
    dir_.emplace(std::move(dir).value());
    path_ = dir_->file("app.values");
  }

  std::optional<ScratchDir> dir_;
  std::string path_;
};

TEST_F(ValueFileTest, CreateStoreLoad) {
  auto file = ValueFile::create(path_, 16, "bfs");
  ASSERT_TRUE(file.is_ok()) << file.status().to_string();
  ValueFile& vf = file.value();
  EXPECT_EQ(vf.num_vertices(), 16U);
  EXPECT_EQ(vf.app_tag(), "bfs");
  EXPECT_EQ(vf.completed_supersteps(), 0U);
  vf.store(3, 0, make_slot(77, false));
  vf.store(3, 1, make_slot(88, true));
  EXPECT_EQ(slot_payload(vf.load(3, 0)), 77U);
  EXPECT_TRUE(slot_is_stale(vf.load(3, 1)));
  EXPECT_EQ(slot_payload(vf.load(3, 1)), 88U);
}

TEST_F(ValueFileTest, ConsumeSetsStaleAndReturnsPrevious) {
  auto file = ValueFile::create(path_, 4, "cc");
  ASSERT_TRUE(file.is_ok());
  ValueFile& vf = file.value();
  vf.store(1, 0, make_slot(5, false));
  const Slot prev = vf.consume(1, 0);
  EXPECT_FALSE(slot_is_stale(prev));
  EXPECT_EQ(slot_payload(prev), 5U);
  EXPECT_TRUE(slot_is_stale(vf.load(1, 0)));
  EXPECT_EQ(slot_payload(vf.load(1, 0)), 5U);  // payload untouched
}

TEST_F(ValueFileTest, PersistsAcrossReopen) {
  {
    auto file = ValueFile::create(path_, 8, "pagerank");
    ASSERT_TRUE(file.is_ok());
    file.value().store(7, 1, make_slot(123, false));
    ASSERT_TRUE(file.value().checkpoint(3).is_ok());
  }
  auto reopened = ValueFile::open(path_);
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  EXPECT_EQ(reopened.value().num_vertices(), 8U);
  EXPECT_EQ(reopened.value().app_tag(), "pagerank");
  EXPECT_EQ(reopened.value().completed_supersteps(), 3U);
  EXPECT_EQ(slot_payload(reopened.value().load(7, 1)), 123U);
}

TEST_F(ValueFileTest, OpenRejectsWrongMagic) {
  const char junk[128] = {};
  ASSERT_TRUE(write_file(path_, junk, sizeof(junk)).is_ok());
  const auto r = ValueFile::open(path_);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);
}

TEST_F(ValueFileTest, OpenRejectsTruncatedFile) {
  {
    auto file = ValueFile::create(path_, 8, "bfs");
    ASSERT_TRUE(file.is_ok());
  }
  // Truncate to header-only: size check must fail.
  auto data = read_file(path_);
  ASSERT_TRUE(data.is_ok());
  ASSERT_TRUE(
      write_file(path_, data.value().data(), sizeof(ValueFileHeader)).is_ok());
  EXPECT_FALSE(ValueFile::open(path_).is_ok());
}

TEST_F(ValueFileTest, RejectsZeroVertices) {
  EXPECT_FALSE(ValueFile::create(path_, 0, "x").is_ok());
}

TEST_F(ValueFileTest, FileSizeFormula) {
  EXPECT_EQ(ValueFile::file_size(10),
            sizeof(ValueFileHeader) + 10 * 2 * sizeof(Slot));
}

// --- Recovery (§IV.G) --------------------------------------------------------

TEST_F(ValueFileTest, RecoveryRestoresFromValidColumn) {
  // Simulate: superstep 0 and 1 completed (checkpoint=2); superstep 2
  // crashed mid-update. Dispatch column of superstep 2 is column 0 (the
  // immutable copy from superstep 1); column 1 holds torn garbage.
  auto file = ValueFile::create(path_, 4, "cc");
  ASSERT_TRUE(file.is_ok());
  ValueFile& vf = file.value();
  for (VertexId v = 0; v < 4; ++v) {
    vf.store(v, 0, make_slot(100 + v, v % 2 == 0));  // valid payloads
    vf.store(v, 1, make_slot(0x7abcdef, false));     // torn writes
  }
  ASSERT_TRUE(vf.checkpoint(2).is_ok());

  const auto report = recover_value_file(vf);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().resume_superstep, 2U);
  EXPECT_EQ(report.value().valid_column, 0U);
  EXPECT_EQ(report.value().vertices_restored, 4U);
  for (VertexId v = 0; v < 4; ++v) {
    // Valid column: payload kept, re-activated for conservative re-dispatch.
    EXPECT_EQ(slot_payload(vf.load(v, 0)), 100 + v);
    EXPECT_FALSE(slot_is_stale(vf.load(v, 0)));
    // Other column: payload copied, stale.
    EXPECT_EQ(slot_payload(vf.load(v, 1)), 100 + v);
    EXPECT_TRUE(slot_is_stale(vf.load(v, 1)));
  }
}

TEST_F(ValueFileTest, RecoveryAfterOddSuperstepUsesColumnOne) {
  // checkpoint=3: superstep 3 dispatches from column 1.
  auto file = ValueFile::create(path_, 2, "bfs");
  ASSERT_TRUE(file.is_ok());
  ValueFile& vf = file.value();
  vf.store(0, 1, make_slot(42, true));
  vf.store(0, 0, make_slot(999, false));  // torn
  ASSERT_TRUE(vf.checkpoint(3).is_ok());
  const auto report = recover_value_file(vf);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().valid_column, 1U);
  EXPECT_EQ(slot_payload(vf.load(0, 0)), 42U);
  EXPECT_EQ(slot_payload(vf.load(0, 1)), 42U);
}

TEST_F(ValueFileTest, RecoveryByPathWorks) {
  {
    auto file = ValueFile::create(path_, 3, "sssp");
    ASSERT_TRUE(file.is_ok());
    file.value().store(2, 0, make_slot(7, true));
    ASSERT_TRUE(file.value().checkpoint(0).is_ok());
  }
  const auto report = recover_value_file_at(path_);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().resume_superstep, 0U);
  auto reopened = ValueFile::open(path_);
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_FALSE(slot_is_stale(reopened.value().load(2, 0)));
}

}  // namespace
}  // namespace gpsa
