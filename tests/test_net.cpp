// Tests for the real network data plane (DESIGN.md §14): the wire-frame
// codec (round trips, fragmentation, corruption and version rejection,
// decoder poisoning), the socket layer over real loopback connections
// (partial writes, short reads, EOF), and the multi-process cluster
// engine — fork+exec'd ranks whose per-node value stores must come out
// bit-identical to the in-process simulation, plus crash-injection runs
// proving a dead peer surfaces as a clean error instead of a hang.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/reference.hpp"
#include "cluster/cluster_engine.hpp"
#include "cluster/cluster_net.hpp"
#include "core/messages.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "net/socket.hpp"
#include "net/wire_frame.hpp"
#include "platform/file_util.hpp"
#include "test_support.hpp"

namespace gpsa {
namespace {

using testing::expect_payloads_equal;

// ---------------------------------------------------------------------------
// Wire-frame codec

std::vector<std::uint8_t> bytes_of(const char* text) {
  return std::vector<std::uint8_t>(text, text + std::strlen(text));
}

TEST(WireFrame, HeaderAndPayloadRoundTrip) {
  const std::vector<std::uint8_t> payload = bytes_of("hello, cluster");
  std::vector<std::uint8_t> wire;
  append_frame(wire, kWireVersionMax, FrameType::kBatch, /*src_rank=*/3,
               /*seq=*/42, payload.data(), payload.size());
  EXPECT_EQ(wire.size(), kFrameHeaderSize + payload.size());

  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  Frame frame;
  auto produced = decoder.next(frame);
  ASSERT_TRUE(produced.is_ok()) << produced.status().to_string();
  ASSERT_TRUE(produced.value());
  EXPECT_EQ(frame.header.version, kWireVersionMax);
  EXPECT_EQ(frame.header.type, FrameType::kBatch);
  EXPECT_EQ(frame.header.src_rank, 3);
  EXPECT_EQ(frame.header.seq, 42U);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(decoder.buffered_bytes(), 0U);
  // No second frame pending.
  produced = decoder.next(frame);
  ASSERT_TRUE(produced.is_ok());
  EXPECT_FALSE(produced.value());
}

TEST(WireFrame, OneByteFeedsResumeAcrossBoundaries) {
  // A decoder must assemble a frame from arbitrarily fragmented input —
  // the short-read path of a real socket, taken to the extreme.
  const std::vector<std::uint8_t> payload = bytes_of("fragmented");
  std::vector<std::uint8_t> wire;
  append_frame(wire, kWireVersionMax, FrameType::kValues, 1, 7,
               payload.data(), payload.size());
  FrameDecoder decoder;
  Frame frame;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(&wire[i], 1);
    auto produced = decoder.next(frame);
    ASSERT_TRUE(produced.is_ok()) << "byte " << i;
    EXPECT_FALSE(produced.value()) << "frame completed early at byte " << i;
  }
  decoder.feed(&wire[wire.size() - 1], 1);
  auto produced = decoder.next(frame);
  ASSERT_TRUE(produced.is_ok());
  ASSERT_TRUE(produced.value());
  EXPECT_EQ(frame.payload, payload);
}

TEST(WireFrame, BackToBackFramesDecodeInOrder) {
  std::vector<std::uint8_t> wire;
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    const std::vector<std::uint8_t> payload(seq, static_cast<std::uint8_t>(seq));
    append_frame(wire, kWireVersionMax, FrameType::kSyncRequest, 0, seq,
                 payload.data(), payload.size());
  }
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    Frame frame;
    auto produced = decoder.next(frame);
    ASSERT_TRUE(produced.is_ok());
    ASSERT_TRUE(produced.value());
    EXPECT_EQ(frame.header.seq, seq);
    EXPECT_EQ(frame.payload.size(), seq);
  }
}

TEST(WireFrame, ControlPayloadsRoundTrip) {
  {
    HelloPayload in;
    in.version_min = 1;
    in.version_max = 9;
    in.rank = 2;
    in.ranks = 5;
    in.graph_fingerprint = 0xdeadbeefcafef00dull;
    const auto out = HelloPayload::decode(in.encode());
    ASSERT_TRUE(out.is_ok());
    EXPECT_EQ(out.value().version_min, in.version_min);
    EXPECT_EQ(out.value().version_max, in.version_max);
    EXPECT_EQ(out.value().rank, in.rank);
    EXPECT_EQ(out.value().ranks, in.ranks);
    EXPECT_EQ(out.value().graph_fingerprint, in.graph_fingerprint);
  }
  {
    HelloAckPayload in;
    in.version = 3;
    const auto out = HelloAckPayload::decode(in.encode());
    ASSERT_TRUE(out.is_ok());
    EXPECT_EQ(out.value().version, 3);
  }
  {
    EndOfSuperstepPayload in;
    in.superstep = 17;
    in.batch_frames = 1234;
    in.messages = 567890;
    const auto out = EndOfSuperstepPayload::decode(in.encode());
    ASSERT_TRUE(out.is_ok());
    EXPECT_EQ(out.value().superstep, in.superstep);
    EXPECT_EQ(out.value().batch_frames, in.batch_frames);
    EXPECT_EQ(out.value().messages, in.messages);
  }
  {
    SyncRequestPayload in;
    in.superstep = 9;
    in.messages_sent = 1;
    in.updates = 2;
    in.wire_bytes = 3;
    in.wire_frames = 4;
    const auto out = SyncRequestPayload::decode(in.encode());
    ASSERT_TRUE(out.is_ok());
    EXPECT_EQ(out.value().superstep, in.superstep);
    EXPECT_EQ(out.value().messages_sent, in.messages_sent);
    EXPECT_EQ(out.value().updates, in.updates);
    EXPECT_EQ(out.value().wire_bytes, in.wire_bytes);
    EXPECT_EQ(out.value().wire_frames, in.wire_frames);
  }
  {
    SyncReleasePayload in;
    in.superstep = 11;
    in.halt = 1;
    in.converged = 1;
    in.total_messages = 99;
    const auto out = SyncReleasePayload::decode(in.encode());
    ASSERT_TRUE(out.is_ok());
    EXPECT_EQ(out.value().superstep, in.superstep);
    EXPECT_EQ(out.value().halt, in.halt);
    EXPECT_EQ(out.value().converged, in.converged);
    EXPECT_EQ(out.value().total_messages, in.total_messages);
  }
  {
    ValuesPayload in;
    in.superstep = 4;
    in.final_sync = 1;
    in.entries = {{0, 10}, {7, 70}, {123456, 0x7fffffff}};
    const auto out = ValuesPayload::decode(in.encode());
    ASSERT_TRUE(out.is_ok());
    EXPECT_EQ(out.value().superstep, in.superstep);
    EXPECT_EQ(out.value().final_sync, in.final_sync);
    EXPECT_EQ(out.value().entries, in.entries);
  }
}

// A valid frame with one mutation applied, for the rejection tests.
std::vector<std::uint8_t> mutated_frame(std::size_t at, std::uint8_t byte) {
  const std::vector<std::uint8_t> payload = bytes_of("payload");
  std::vector<std::uint8_t> wire;
  append_frame(wire, kWireVersionMax, FrameType::kBatch, 0, 1, payload.data(),
               payload.size());
  wire.at(at) = byte;
  return wire;
}

void expect_poisoned(const std::vector<std::uint8_t>& wire,
                     const std::string& label) {
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  Frame frame;
  auto produced = decoder.next(frame);
  ASSERT_FALSE(produced.is_ok()) << label << ": corrupt frame accepted";
  EXPECT_EQ(produced.status().code(), StatusCode::kCorruptData) << label;
  // Poisoning is sticky: a pristine frame after the corruption must not
  // resynchronize the stream (the decoder cannot trust its framing).
  std::vector<std::uint8_t> good;
  append_frame(good, kWireVersionMax, FrameType::kHello, 0, 2, nullptr, 0);
  decoder.feed(good.data(), good.size());
  produced = decoder.next(frame);
  ASSERT_FALSE(produced.is_ok()) << label << ": decoder recovered after poison";
}

TEST(WireFrame, RejectsCorruptionAndStaysPoisoned) {
  expect_poisoned(mutated_frame(0, 0x00), "bad magic");
  expect_poisoned(mutated_frame(10, 0x01), "nonzero reserved");
  expect_poisoned(mutated_frame(6, 0xee), "unknown frame type");
  expect_poisoned(mutated_frame(20, 0x5a), "payload CRC mismatch");
  // Corrupt the payload itself rather than the stored CRC.
  expect_poisoned(mutated_frame(kFrameHeaderSize, 0xff), "payload bit flip");
}

TEST(WireFrame, RejectsOversizePayloadLength) {
  // append_frame checks the cap, so craft the header by hand.
  std::vector<std::uint8_t> wire(kFrameHeaderSize);
  encode_frame_header(wire.data(), kWireVersionMax, FrameType::kBatch, 0, 1,
                      kMaxFramePayload + 1, /*payload_crc=*/0);
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  Frame frame;
  auto produced = decoder.next(frame);
  ASSERT_FALSE(produced.is_ok());
  EXPECT_EQ(produced.status().code(), StatusCode::kCorruptData);
}

TEST(WireFrame, RejectsVersionOtherThanNegotiated) {
  // Post-handshake frames must carry exactly the negotiated version.
  const std::vector<std::uint8_t> payload = bytes_of("x");
  std::vector<std::uint8_t> wire;
  append_frame(wire, /*version=*/kWireVersionMax + 1, FrameType::kBatch, 0, 1,
               payload.data(), payload.size());
  FrameDecoder decoder;
  decoder.set_accept_version(kWireVersionMax);
  decoder.feed(wire.data(), wire.size());
  Frame frame;
  auto produced = decoder.next(frame);
  ASSERT_FALSE(produced.is_ok());
  EXPECT_EQ(produced.status().code(), StatusCode::kCorruptData);
}

TEST(WireFrame, NegotiateVersionPicksHighestCommon) {
  auto v = negotiate_version(1, 3, 2, 9);
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value(), 3);
  v = negotiate_version(2, 9, 1, 3);
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value(), 3);
  v = negotiate_version(1, 2, 3, 4);
  ASSERT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFrame, BatchFrameWireBytesMatchesLayout) {
  // header + 8-byte superstep tag + 8 bytes per VertexMessage — the
  // in-process engine's wire model must track the real frame layout.
  static_assert(sizeof(VertexMessage) == 8);
  EXPECT_EQ(batch_frame_wire_bytes(0), kFrameHeaderSize + 8);
  EXPECT_EQ(batch_frame_wire_bytes(100), kFrameHeaderSize + 8 + 800);
}

TEST(WireFrame, Crc32MatchesReferenceVectors) {
  // Reflected CRC-32 (0xEDB88320), zlib-compatible: the standard "123456789"
  // check value pins the polynomial and bit order.
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check, sizeof(check)), 0xCBF43926U);
  EXPECT_EQ(crc32(nullptr, 0), 0U);
}

// ---------------------------------------------------------------------------
// Socket layer over real loopback connections

std::uint16_t next_port() {
  // Distinct base per test process, spaced so concurrent ctest binaries
  // and sequential tests in this one never collide.
  static std::uint16_t next =
      static_cast<std::uint16_t>(31000 + (::getpid() % 8000));
  next = static_cast<std::uint16_t>(next + 16);
  return next;
}

struct LoopbackPair {
  Socket client;
  Socket server;
};

LoopbackPair make_loopback_pair() {
  const std::uint16_t port = next_port();
  auto listener = tcp_listen(port);
  EXPECT_TRUE(listener.is_ok()) << listener.status().to_string();
  auto client = tcp_connect_retry(port, /*timeout_ms=*/5000);
  EXPECT_TRUE(client.is_ok()) << client.status().to_string();
  auto server = tcp_accept(listener.value(), /*timeout_ms=*/5000);
  EXPECT_TRUE(server.is_ok()) << server.status().to_string();
  LoopbackPair pair;
  pair.client = std::move(client.value());
  pair.server = std::move(server.value());
  return pair;
}

// Reads until the decoder yields a frame (or errors / times out).
Result<Frame> read_one_frame(const Socket& socket, FrameDecoder& decoder,
                             int timeout_ms) {
  Frame frame;
  for (;;) {
    GPSA_ASSIGN_OR_RETURN(const bool ready, decoder.next(frame));
    if (ready) {
      return frame;
    }
    GPSA_ASSIGN_OR_RETURN(const bool readable,
                          wait_readable(socket, timeout_ms));
    if (!readable) {
      return io_error("read_one_frame timed out");
    }
    std::uint8_t buf[4096];
    bool eof = false;
    GPSA_ASSIGN_OR_RETURN(const std::size_t got,
                          recv_nonblocking(socket, buf, sizeof(buf), eof));
    if (got > 0) {
      decoder.feed(buf, got);
    } else if (eof) {
      return failed_precondition("peer closed mid-frame");
    }
  }
}

TEST(NetSocket, LoopbackFrameRoundTrip) {
  LoopbackPair pair = make_loopback_pair();
  const std::vector<std::uint8_t> payload = bytes_of("over the wire");
  std::vector<std::uint8_t> wire;
  append_frame(wire, kWireVersionMax, FrameType::kValues, 2, 5, payload.data(),
               payload.size());
  ASSERT_TRUE(send_all(pair.client, wire.data(), wire.size(), 5000).is_ok());
  FrameDecoder decoder;
  auto frame = read_one_frame(pair.server, decoder, 5000);
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
  EXPECT_EQ(frame.value().header.type, FrameType::kValues);
  EXPECT_EQ(frame.value().header.src_rank, 2);
  EXPECT_EQ(frame.value().payload, payload);
}

TEST(NetSocket, ShortReadsResumeAcrossChunkedSends) {
  // The sender trickles the frame out in small chunks; every recv on the
  // receiver is a short read the decoder must resume from.
  LoopbackPair pair = make_loopback_pair();
  std::vector<std::uint8_t> payload(300);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  std::vector<std::uint8_t> wire;
  append_frame(wire, kWireVersionMax, FrameType::kBatch, 1, 9, payload.data(),
               payload.size());
  std::thread sender([&] {
    for (std::size_t at = 0; at < wire.size(); at += 11) {
      const std::size_t len = std::min<std::size_t>(11, wire.size() - at);
      EXPECT_TRUE(send_all(pair.client, wire.data() + at, len, 5000).is_ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  FrameDecoder decoder;
  auto frame = read_one_frame(pair.server, decoder, 10000);
  sender.join();
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
  EXPECT_EQ(frame.value().payload, payload);
}

TEST(NetSocket, LargeFrameSurvivesPartialWrites) {
  // 4 MiB payload: far beyond the socket buffers, so send_all must take
  // its partial-write resumption path while the reader drains.
  LoopbackPair pair = make_loopback_pair();
  std::vector<std::uint8_t> payload(4u << 20);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i ^ (i >> 9));
  }
  std::vector<std::uint8_t> wire;
  append_frame(wire, kWireVersionMax, FrameType::kValues, 0, 1, payload.data(),
               payload.size());
  Status sent;
  std::thread sender(
      [&] { sent = send_all(pair.client, wire.data(), wire.size(), 30000); });
  FrameDecoder decoder;
  auto frame = read_one_frame(pair.server, decoder, 30000);
  sender.join();
  ASSERT_TRUE(sent.is_ok()) << sent.to_string();
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
  EXPECT_EQ(frame.value().payload, payload);
}

TEST(NetSocket, RecvReportsEofAfterPeerCloses) {
  LoopbackPair pair = make_loopback_pair();
  pair.client.close_fd();
  auto readable = wait_readable(pair.server, 5000);
  ASSERT_TRUE(readable.is_ok());
  ASSERT_TRUE(readable.value());
  std::uint8_t buf[16];
  bool eof = false;
  auto got = recv_nonblocking(pair.server, buf, sizeof(buf), eof);
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value(), 0U);
  EXPECT_TRUE(eof);
}

TEST(NetSocket, WaitReadableTimesOutOnSilence) {
  LoopbackPair pair = make_loopback_pair();
  auto readable = wait_readable(pair.server, 50);
  ASSERT_TRUE(readable.is_ok());
  EXPECT_FALSE(readable.value());
}

// ---------------------------------------------------------------------------
// Cluster-net options

TEST(ClusterNet, FromEnvParsesAndValidates) {
  auto with_env = [](const char* rank, const char* ranks, const char* sync,
                     auto&& check) {
    ASSERT_EQ(::setenv("GPSA_CLUSTER_RANK", rank, 1), 0);
    ASSERT_EQ(::setenv("GPSA_CLUSTER_RANKS", ranks, 1), 0);
    if (sync != nullptr) {
      ASSERT_EQ(::setenv("GPSA_CLUSTER_VALUE_SYNC", sync, 1), 0);
    }
    check(ClusterNetOptions::from_env());
    ::unsetenv("GPSA_CLUSTER_RANK");
    ::unsetenv("GPSA_CLUSTER_RANKS");
    ::unsetenv("GPSA_CLUSTER_VALUE_SYNC");
  };
  ::unsetenv("GPSA_CLUSTER_RANK");
  ::unsetenv("GPSA_CLUSTER_RANKS");
  EXPECT_FALSE(ClusterNetOptions::from_env().is_ok()) << "missing env";
  with_env("2", "4", nullptr, [](const Result<ClusterNetOptions>& net) {
    ASSERT_TRUE(net.is_ok()) << net.status().to_string();
    EXPECT_EQ(net.value().rank, 2U);
    EXPECT_EQ(net.value().ranks, 4U);
    EXPECT_EQ(net.value().value_sync, ClusterNetOptions::ValueSync::kFinal);
  });
  with_env("0", "2", "superstep", [](const Result<ClusterNetOptions>& net) {
    ASSERT_TRUE(net.is_ok());
    EXPECT_EQ(net.value().value_sync,
              ClusterNetOptions::ValueSync::kSuperstep);
  });
  with_env("4", "4", nullptr, [](const Result<ClusterNetOptions>& net) {
    EXPECT_FALSE(net.is_ok()) << "rank == ranks accepted";
  });
  with_env("0", "2", "sometimes", [](const Result<ClusterNetOptions>& net) {
    EXPECT_FALSE(net.is_ok()) << "bad value-sync mode accepted";
  });
  with_env("nope", "2", nullptr, [](const Result<ClusterNetOptions>& net) {
    EXPECT_FALSE(net.is_ok()) << "non-numeric rank accepted";
  });
}

TEST(ClusterNet, SingleRankClusterMatchesReference) {
  // ranks == 1 exercises the whole net-mode control loop with no peers —
  // no sockets, trivial barriers — and must equal the reference run.
  const EdgeList graph = rmat(8, 2000, 91);
  const BfsProgram program(0);
  ClusterNetOptions net;
  net.rank = 0;
  net.ranks = 1;
  const auto result = run_cluster_rank(graph, program, ClusterOptions{}, net);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(result.value().values, ref.values);
  EXPECT_EQ(result.value().total_messages, ref.total_messages);
  EXPECT_TRUE(result.value().converged);
  EXPECT_TRUE(result.value().measured_wire);
  EXPECT_EQ(result.value().bytes_on_wire, 0U);  // nothing crossed a socket
  EXPECT_EQ(result.value().superstep_wire_bytes.size(),
            result.value().supersteps);
}

// ---------------------------------------------------------------------------
// Multi-process runs (fork + exec of tests/cluster_net_rank.cpp)

std::string helper_path() {
  char self[4096];
  const ssize_t len = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  GPSA_CHECK(len > 0);
  self[len] = '\0';
  std::string path(self);
  path.erase(path.find_last_of('/'));
  return path + "/cluster_net_rank";
}

struct RankSpec {
  std::uint32_t rank = 0;
  std::uint32_t ranks = 3;
  std::uint16_t port = 0;
  std::string program = "pagerank";
  std::string exec;        // "", "sweep", "worklist"
  std::string store_dir;   // "" = in-memory
  std::string summary;     // "" = no summary
  std::string value_sync;  // "" = default (final)
  int timeout_ms = 30000;
  int crash_at = -1;
};

pid_t spawn_rank(const RankSpec& spec) {
  const std::string helper = helper_path();
  const pid_t pid = ::fork();
  if (pid != 0) {
    return pid;
  }
  // Child: environment is the only interface the helper has.
  ::setenv("GPSA_CLUSTER_RANK", std::to_string(spec.rank).c_str(), 1);
  ::setenv("GPSA_CLUSTER_RANKS", std::to_string(spec.ranks).c_str(), 1);
  ::setenv("GPSA_CLUSTER_PORT", std::to_string(spec.port).c_str(), 1);
  ::setenv("GPSA_NET_TIMEOUT_MS", std::to_string(spec.timeout_ms).c_str(), 1);
  ::setenv("GPSA_NET_HELPER_PROGRAM", spec.program.c_str(), 1);
  if (!spec.exec.empty()) {
    ::setenv("GPSA_NET_HELPER_EXEC", spec.exec.c_str(), 1);
  }
  if (!spec.store_dir.empty()) {
    ::setenv("GPSA_NET_HELPER_STORE", spec.store_dir.c_str(), 1);
  }
  if (!spec.summary.empty()) {
    ::setenv("GPSA_NET_HELPER_SUMMARY", spec.summary.c_str(), 1);
  }
  if (!spec.value_sync.empty()) {
    ::setenv("GPSA_CLUSTER_VALUE_SYNC", spec.value_sync.c_str(), 1);
  }
  if (spec.crash_at >= 0) {
    ::setenv("GPSA_NET_HELPER_CRASH_AT", std::to_string(spec.crash_at).c_str(),
             1);
  }
  ::execl(helper.c_str(), helper.c_str(), static_cast<char*>(nullptr));
  ::_exit(127);  // exec failed
}

/// Exit code of `pid` (or -1 on abnormal termination).
int wait_exit_code(pid_t pid) {
  int wait_status = 0;
  if (::waitpid(pid, &wait_status, 0) != pid) {
    return -1;
  }
  return WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
}

/// Parses the helper's summary file into name -> numbers.
std::map<std::string, std::vector<std::uint64_t>> parse_summary(
    const std::string& path) {
  std::map<std::string, std::vector<std::uint64_t>> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    std::uint64_t value = 0;
    while (fields >> value) {
      out[key].push_back(value);
    }
  }
  return out;
}

struct ClusterNetCase {
  const char* program;
  const char* exec;
};

class ClusterNetProcessTest : public ::testing::TestWithParam<ClusterNetCase> {
};

TEST_P(ClusterNetProcessTest, BitIdenticalToInProcessSimulation) {
  const ClusterNetCase param = GetParam();
  const std::uint32_t kRanks = 3;
  auto dir = ScratchDir::create("cluster_net");
  ASSERT_TRUE(dir.is_ok());

  // In-process oracle: same graph, same partition count, same exec mode.
  const EdgeList graph = rmat(8, 2000, 91);
  std::unique_ptr<Program> program;
  if (std::string(param.program) == "pagerank") {
    program = std::make_unique<PageRankProgram>(5);
  } else {
    program = std::make_unique<BfsProgram>(0);
  }
  ClusterOptions oracle_options;
  oracle_options.num_nodes = kRanks;
  oracle_options.scheduler_workers = 2;
  oracle_options.value_store_dir = dir.value().file("oracle");
  oracle_options.exec = std::string(param.exec) == "worklist"
                            ? ExecMode::kWorklist
                            : ExecMode::kSweep;
  const auto oracle = ClusterEngine::run(graph, *program, oracle_options);
  ASSERT_TRUE(oracle.is_ok()) << oracle.status().to_string();
  EXPECT_FALSE(oracle.value().measured_wire);  // the model, not the wire

  // The real thing: one process per rank over localhost sockets.
  const std::string net_store = dir.value().file("net");
  const std::uint16_t port = next_port();
  std::vector<pid_t> pids;
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    RankSpec spec;
    spec.rank = rank;
    spec.ranks = kRanks;
    spec.port = port;
    spec.program = param.program;
    spec.exec = param.exec;
    spec.store_dir = net_store;
    spec.summary = dir.value().file("rank" + std::to_string(rank) + ".summary");
    pids.push_back(spawn_rank(spec));
  }
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    EXPECT_EQ(wait_exit_code(pids[rank]), 0) << "rank " << rank << " failed";
  }

  // The tentpole acceptance: per-node value stores byte-identical to the
  // in-process simulation's.
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    const std::string name = "/node" + std::to_string(rank) + ".values";
    const auto oracle_bytes = read_file(oracle_options.value_store_dir + name);
    const auto net_bytes = read_file(net_store + name);
    ASSERT_TRUE(oracle_bytes.is_ok()) << oracle_bytes.status().to_string();
    ASSERT_TRUE(net_bytes.is_ok()) << net_bytes.status().to_string();
    EXPECT_TRUE(oracle_bytes.value() == net_bytes.value())
        << "node " << rank << " value store differs from the simulation";
  }

  // Rank 0's aggregate view matches the simulation, and the wire metrics
  // are real measurements.
  const auto summary = parse_summary(dir.value().file("rank0.summary"));
  ASSERT_EQ(summary.count("values"), 1U);
  expect_payloads_equal(
      std::vector<Payload>(summary.at("values").begin(),
                           summary.at("values").end()),
      oracle.value().values);
  EXPECT_EQ(summary.at("supersteps")[0], oracle.value().supersteps);
  EXPECT_EQ(summary.at("total_messages")[0], oracle.value().total_messages);
  EXPECT_EQ(summary.at("converged")[0], oracle.value().converged ? 1U : 0U);
  EXPECT_EQ(summary.at("measured_wire")[0], 1U);
  EXPECT_GT(summary.at("bytes_on_wire")[0], 0U);
  EXPECT_GT(summary.at("frames_sent")[0], 0U);
  EXPECT_EQ(summary.at("superstep_wire").size(), oracle.value().supersteps);
}

INSTANTIATE_TEST_SUITE_P(
    ProgramsAndExecModes, ClusterNetProcessTest,
    ::testing::Values(ClusterNetCase{"pagerank", "sweep"},
                      ClusterNetCase{"pagerank", "worklist"},
                      ClusterNetCase{"bfs", "sweep"},
                      ClusterNetCase{"bfs", "worklist"}),
    [](const ::testing::TestParamInfo<ClusterNetCase>& param_info) {
      return std::string(param_info.param.program) + "_" +
             param_info.param.exec;
    });

TEST(ClusterNetProcess, SuperstepValueSyncTracksTheClusterLive) {
  // Delta-sync mode: rank 0's mirror is fed every superstep instead of
  // once at the end — the final vector must come out the same.
  const std::uint32_t kRanks = 3;
  auto dir = ScratchDir::create("cluster_net_sync");
  ASSERT_TRUE(dir.is_ok());
  const EdgeList graph = rmat(8, 2000, 91);
  const PageRankProgram program(5);
  ClusterOptions oracle_options;
  oracle_options.num_nodes = kRanks;
  oracle_options.scheduler_workers = 2;
  const auto oracle = ClusterEngine::run(graph, program, oracle_options);
  ASSERT_TRUE(oracle.is_ok());

  const std::uint16_t port = next_port();
  std::vector<pid_t> pids;
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    RankSpec spec;
    spec.rank = rank;
    spec.ranks = kRanks;
    spec.port = port;
    spec.value_sync = "superstep";
    spec.summary = dir.value().file("rank" + std::to_string(rank) + ".summary");
    pids.push_back(spawn_rank(spec));
  }
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    EXPECT_EQ(wait_exit_code(pids[rank]), 0) << "rank " << rank;
  }
  const auto summary = parse_summary(dir.value().file("rank0.summary"));
  ASSERT_EQ(summary.count("values"), 1U);
  expect_payloads_equal(
      std::vector<Payload>(summary.at("values").begin(),
                           summary.at("values").end()),
      oracle.value().values);
}

TEST(ClusterNetProcess, DeadPeerSurfacesAsErrorNotHang) {
  // Rank 1 _exit()s mid-superstep, after dispatching but before its
  // end-of-superstep marker. The survivors must fail within the network
  // timeout — never hang in the barrier.
  const std::uint32_t kRanks = 3;
  const std::uint16_t port = next_port();
  const auto started = std::chrono::steady_clock::now();
  std::vector<pid_t> pids;
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    RankSpec spec;
    spec.rank = rank;
    spec.ranks = kRanks;
    spec.port = port;
    spec.program = "bfs";
    spec.timeout_ms = 5000;
    spec.crash_at = rank == 1 ? 1 : -1;
    pids.push_back(spawn_rank(spec));
  }
  EXPECT_EQ(wait_exit_code(pids[1]), 3) << "crash injection did not fire";
  EXPECT_EQ(wait_exit_code(pids[0]), 1) << "rank 0 did not fail cleanly";
  EXPECT_EQ(wait_exit_code(pids[2]), 1) << "rank 2 did not fail cleanly";
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            60)
      << "survivors took too long to notice the dead peer";
}

TEST(ClusterNetProcess, RendezvousTimesOutWhenPeersNeverArrive) {
  // A lone rank 0 of a declared 2-rank cluster: nobody ever connects, so
  // the accept deadline must end the run with an error.
  RankSpec spec;
  spec.rank = 0;
  spec.ranks = 2;
  spec.port = next_port();
  spec.timeout_ms = 1500;
  const auto started = std::chrono::steady_clock::now();
  const pid_t pid = spawn_rank(spec);
  EXPECT_EQ(wait_exit_code(pid), 1);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            30);
}

}  // namespace
}  // namespace gpsa
