// Stress and scale tests: long superstep protocols, fan-out extremes,
// larger graphs, and wide actor ensembles — the shapes most likely to
// expose protocol races or counter drift.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/pagerank.hpp"
#include "apps/reference.hpp"
#include "baselines/graphchi/psw_engine.hpp"
#include "baselines/xstream/xstream_engine.hpp"
#include "cluster/cluster_engine.hpp"
#include "core/engine.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "test_support.hpp"

namespace gpsa {
namespace {

using testing::expect_float_payloads_near;
using testing::expect_payloads_equal;

TEST(Stress, TwoThousandSuperstepsOnAChain) {
  // Every superstep moves the frontier one hop: 2000 full
  // ITERATION_START / DISPATCH_OVER / COMPUTE_OVER rounds.
  constexpr VertexId kLength = 2000;
  const EdgeList graph = chain(kLength);
  const BfsProgram program(0);
  EngineOptions eo;
  eo.num_dispatchers = 2;
  eo.num_computers = 2;
  eo.scheduler_workers = 2;
  const auto result = Engine::run(graph, program, eo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().supersteps, kLength);  // kLength-1 hops + quiesce
  EXPECT_TRUE(result.value().converged);
  EXPECT_EQ(result.value().values[kLength - 1], kLength - 1);
}

TEST(Stress, MassiveFanOutWithTinyBatches) {
  // One hub fans out to 20k leaves with batch size 8: thousands of
  // mailbox batches in a single superstep.
  const EdgeList graph = star(20'000);
  const ConnectedComponentsProgram program;
  EngineOptions eo;
  eo.num_dispatchers = 2;
  eo.num_computers = 4;
  eo.scheduler_workers = 2;
  eo.message_batch = 8;
  const auto result = Engine::run(graph, program, eo);
  ASSERT_TRUE(result.is_ok());
  for (Payload label : result.value().values) {
    ASSERT_EQ(label, 0U);
  }
}

TEST(Stress, WideActorEnsemble) {
  const EdgeList graph = rmat(11, 30'000, 7);
  const BfsProgram program(0);
  EngineOptions eo;
  eo.num_dispatchers = 16;
  eo.num_computers = 16;
  eo.scheduler_workers = 4;
  const auto result = Engine::run(graph, program, eo);
  ASSERT_TRUE(result.is_ok());
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(result.value().values, ref.values);
}

TEST(Stress, LargerRmatAllEnginesAgree) {
  const EdgeList graph = rmat(13, 120'000, 17);
  const Csr csr = Csr::from_edges(graph);
  const PageRankProgram program(4);
  const ReferenceResult ref = reference_run(csr, program);

  EngineOptions eo;
  eo.num_dispatchers = 4;
  eo.num_computers = 4;
  eo.scheduler_workers = 2;
  const auto gpsa = Engine::run(graph, program, eo);
  ASSERT_TRUE(gpsa.is_ok());
  expect_float_payloads_near(gpsa.value().values, ref.values);

  BaselineOptions bo;
  bo.threads = 2;
  bo.partitions = 6;
  const auto psw = PswEngine::run(graph, program, bo);
  ASSERT_TRUE(psw.is_ok());
  expect_float_payloads_near(psw.value().values, ref.values);

  const auto xs = XStreamEngine::run(graph, program, bo);
  ASSERT_TRUE(xs.is_ok());
  expect_float_payloads_near(xs.value().values, ref.values);
}

TEST(Stress, SixteenNodeCluster) {
  const EdgeList graph = rmat(11, 40'000, 23);
  const ConnectedComponentsProgram program;
  ClusterOptions co;
  co.num_nodes = 16;
  co.scheduler_workers = 4;
  co.message_batch = 64;
  const auto result = ClusterEngine::run(graph, program, co);
  ASSERT_TRUE(result.is_ok());
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(result.value().values, ref.values);
}

TEST(Stress, RepeatedRunsAreDeterministicForIntegerApps) {
  const EdgeList graph = rmat(10, 20'000, 29);
  const BfsProgram program(0);
  EngineOptions eo;
  eo.num_dispatchers = 3;
  eo.num_computers = 3;
  eo.scheduler_workers = 2;
  std::vector<Payload> first;
  for (int run = 0; run < 5; ++run) {
    const auto result = Engine::run(graph, program, eo);
    ASSERT_TRUE(result.is_ok());
    if (run == 0) {
      first = result.value().values;
    } else {
      ASSERT_EQ(result.value().values, first) << "run " << run;
    }
  }
}

TEST(Stress, SingleMessageBatchesWithCheckpointEverySuperstep) {
  // Batch size 1 maximizes mailbox traffic (every generated message is its
  // own push/park/notify round) while per-superstep checkpoints interleave
  // msync into the two-column flip — the densest version of the protocols
  // the sanitizer stress suite checks at the substrate level.
#if defined(GPSA_SANITIZE_ACTIVE)
  const EdgeList graph = rmat(9, 8'000, 19);
#else
  const EdgeList graph = rmat(10, 30'000, 19);
#endif
  const BfsProgram program(0);
  EngineOptions eo;
  eo.num_dispatchers = 4;
  eo.num_computers = 4;
  eo.scheduler_workers = 2;
  eo.message_batch = 1;
  eo.checkpoint_each_superstep = true;
  const auto result = Engine::run(graph, program, eo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(result.value().values, ref.values);
}

TEST(Stress, ActorOversubscriptionParksMailboxesConstantly) {
  // Far more actors than workers: mailboxes oscillate between empty and
  // non-empty, so the scheduler's idle/scheduled transition and the
  // MpscQueue park/notify protocol run at maximum frequency.
#if defined(GPSA_SANITIZE_ACTIVE)
  const EdgeList graph = rmat(9, 6'000, 43);
#else
  const EdgeList graph = rmat(11, 40'000, 43);
#endif
  const ConnectedComponentsProgram program;
  EngineOptions eo;
  eo.num_dispatchers = 8;
  eo.num_computers = 8;
  eo.scheduler_workers = 2;
  eo.message_batch = 4;
  const auto result = Engine::run(graph, program, eo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(result.value().values, ref.values);
}

TEST(Stress, BackToBackEnginesShareNothing) {
  // Interleave engines and algorithms to shake out leaked global state.
  const EdgeList graph = rmat(9, 6'000, 31);
  const Csr csr = Csr::from_edges(graph);
  EngineOptions eo;
  eo.num_dispatchers = 2;
  eo.num_computers = 2;
  eo.scheduler_workers = 2;
  for (int round = 0; round < 3; ++round) {
    const BfsProgram bfs(0);
    const auto a = Engine::run(graph, bfs, eo);
    ASSERT_TRUE(a.is_ok());
    expect_payloads_equal(a.value().values,
                          reference_run(csr, bfs).values);
    const ConnectedComponentsProgram cc;
    BaselineOptions bo;
    bo.threads = 2;
    const auto b = PswEngine::run(graph, cc, bo);
    ASSERT_TRUE(b.is_ok());
    expect_payloads_equal(b.value().values, reference_run(csr, cc).values);
  }
}

}  // namespace
}  // namespace gpsa
