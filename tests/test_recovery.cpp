// Fault-tolerance integration tests (paper §IV.G).
//
// Scenario: run part of a computation with per-superstep checkpointing,
// simulate a mid-superstep crash by tearing the mutable column (and the
// dispatch flags the crashed superstep had partially consumed), then
// resume from the same files. Monotone apps must converge to exactly the
// no-crash result.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/pagerank.hpp"
#include "apps/reference.hpp"
#include "core/engine.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "platform/file_util.hpp"
#include "storage/value_file.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace gpsa {
namespace {

using testing::expect_payloads_equal;

/// Overwrites the crashed superstep's update column with garbage and
/// randomly consumes dispatch flags — what a crash mid-superstep leaves.
void tear_value_file(const std::string& path, std::uint64_t seed) {
  auto file = ValueFile::open(path);
  ASSERT_TRUE(file.is_ok()) << file.status().to_string();
  ValueFile& vf = file.value();
  const std::uint64_t resume = vf.completed_supersteps();
  const unsigned update_col = ValueFile::update_column(resume);
  const unsigned dispatch_col = ValueFile::dispatch_column(resume);
  Rng rng(seed);
  for (VertexId v = 0; v < vf.num_vertices(); ++v) {
    if (rng.next_bool(0.7)) {
      vf.store(v, update_col,
               make_slot(static_cast<Payload>(rng.next_below(kPayloadMask)),
                         rng.next_bool(0.5)));
    }
    if (rng.next_bool(0.4)) {
      vf.consume(v, dispatch_col);  // partially-dispatched flags
    }
  }
}

struct CrashCase {
  const char* name;
  std::uint64_t crash_after;  // completed supersteps before the crash
};

class CrashRecoveryTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashRecoveryTest, BfsSurvivesMidSuperstepCrash) {
  const std::uint64_t crash_after = GetParam().crash_after;
  const EdgeList graph = rmat(8, 2000, 55);
  const BfsProgram program(0);

  auto dir = ScratchDir::create("crash");
  ASSERT_TRUE(dir.is_ok());

  EngineOptions eo;
  eo.num_dispatchers = 2;
  eo.num_computers = 2;
  eo.scheduler_workers = 2;
  eo.checkpoint_each_superstep = true;
  eo.work_dir = dir.value().path();

  // Phase 1: run `crash_after` supersteps, then "crash".
  EngineOptions partial = eo;
  partial.max_supersteps = crash_after;
  const auto first = Engine::run(graph, program, partial);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  const std::string value_path = dir.value().file("bfs.values");
  ASSERT_TRUE(file_exists(value_path));
  tear_value_file(value_path, /*seed=*/crash_after * 31 + 7);

  // Phase 2: resume from the crashed files and run to convergence.
  const auto resumed = Engine::run_from_csr(dir.value().file("graph.csr"),
                                            program, eo, /*resume=*/true);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_TRUE(resumed.value().converged);

  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(resumed.value().values, ref.values);
}

TEST_P(CrashRecoveryTest, CcSurvivesMidSuperstepCrash) {
  const std::uint64_t crash_after = GetParam().crash_after;
  const EdgeList graph = erdos_renyi(300, 900, 77);
  const ConnectedComponentsProgram program;

  auto dir = ScratchDir::create("crashcc");
  ASSERT_TRUE(dir.is_ok());

  EngineOptions eo;
  eo.num_dispatchers = 2;
  eo.num_computers = 3;
  eo.scheduler_workers = 2;
  eo.checkpoint_each_superstep = true;
  eo.work_dir = dir.value().path();

  EngineOptions partial = eo;
  partial.max_supersteps = crash_after;
  const auto first = Engine::run(graph, program, partial);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  tear_value_file(dir.value().file("cc.values"), crash_after * 13 + 3);

  const auto resumed = Engine::run_from_csr(dir.value().file("graph.csr"),
                                            program, eo, /*resume=*/true);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(resumed.value().values, ref.values);
}

INSTANTIATE_TEST_SUITE_P(
    CrashPoints, CrashRecoveryTest,
    ::testing::Values(CrashCase{"AfterOne", 1}, CrashCase{"AfterTwo", 2},
                      CrashCase{"AfterThree", 3}, CrashCase{"AfterFive", 5}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(CrashRecovery, ResumeAfterCrashBetweenSlotFlushAndHeaderBump) {
  // The narrowest §IV.G window: superstep k ran to completion, the
  // checkpoint's slot msync finished, and the process died before the
  // header bump. The file then holds a fully-written update column, a
  // fully-consumed dispatch column, and a completed_supersteps counter
  // still reading k. Recovery must discard the orphaned superstep, resume
  // at k, and land on the exact no-crash result.
  const EdgeList graph = rmat(8, 2500, 91);
  const BfsProgram program(0);
  auto dir = ScratchDir::create("midckpt");
  ASSERT_TRUE(dir.is_ok());

  EngineOptions eo;
  eo.num_dispatchers = 2;
  eo.num_computers = 2;
  eo.scheduler_workers = 2;
  eo.checkpoint_each_superstep = true;
  eo.work_dir = dir.value().path();

  EngineOptions partial = eo;
  partial.max_supersteps = 3;
  const auto first = Engine::run(graph, program, partial);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();

  {
    auto file = ValueFile::open(dir.value().file("bfs.values"));
    ASSERT_TRUE(file.is_ok()) << file.status().to_string();
    ValueFile& vf = file.value();
    const std::uint64_t resume = vf.completed_supersteps();
    ASSERT_EQ(resume, 3U);
    const unsigned dispatch_col = ValueFile::dispatch_column(resume);
    const unsigned update_col = ValueFile::update_column(resume);
    for (VertexId v = 0; v < vf.num_vertices(); ++v) {
      // Superstep `resume` executed fully: plausible monotone BFS values in
      // the update column (the freshest level, sometimes improved) ...
      const Payload level = slot_payload(vf.load(v, dispatch_col));
      const Payload improved = level > 1 ? level - 1 : level;
      vf.store(v, update_col, make_slot(improved, /*stale=*/false));
      // ... and every dispatch flag consumed.
      vf.consume(v, dispatch_col);
    }
    // The checkpoint's slot flush completed; the header bump never ran.
    ASSERT_TRUE(vf.sync().is_ok());
    ASSERT_EQ(vf.completed_supersteps(), resume);
  }

  const auto resumed = Engine::run_from_csr(dir.value().file("graph.csr"),
                                            program, eo, /*resume=*/true);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_TRUE(resumed.value().converged);
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(resumed.value().values, ref.values);
}

TEST(CrashRecovery, ResumeRejectsWrongApp) {
  const EdgeList graph = chain(16);
  auto dir = ScratchDir::create("crashapp");
  ASSERT_TRUE(dir.is_ok());
  EngineOptions eo;
  eo.num_dispatchers = 1;
  eo.num_computers = 1;
  eo.scheduler_workers = 1;
  eo.checkpoint_each_superstep = true;
  eo.work_dir = dir.value().path();
  eo.max_supersteps = 2;
  ASSERT_TRUE(Engine::run(graph, BfsProgram(0), eo).is_ok());
  // Try to resume the BFS value file under the CC program: the app tag
  // check must refuse.
  auto bad = Engine::run_from_csr(dir.value().file("graph.csr"),
                                  ConnectedComponentsProgram(), eo,
                                  /*resume=*/true);
  // CC's value file does not exist yet, so this creates a fresh one — OK.
  ASSERT_TRUE(bad.is_ok());
  // But resuming the BFS file with a program named differently fails: force
  // the collision by renaming.
  auto data = read_file(dir.value().file("bfs.values"));
  ASSERT_TRUE(data.is_ok());
  ASSERT_TRUE(write_file(dir.value().file("cc.values"),
                         data.value().data(), data.value().size())
                  .is_ok());
  bad = Engine::run_from_csr(dir.value().file("graph.csr"),
                             ConnectedComponentsProgram(), eo,
                             /*resume=*/true);
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CrashRecovery, CleanResumeWithoutCrashAlsoConverges) {
  // Resume on an untorn checkpoint: conservative re-activation must not
  // change the final answer.
  const EdgeList graph = grid(10, 10);
  const BfsProgram program(0);
  auto dir = ScratchDir::create("cleanresume");
  ASSERT_TRUE(dir.is_ok());
  EngineOptions eo;
  eo.num_dispatchers = 2;
  eo.num_computers = 2;
  eo.scheduler_workers = 2;
  eo.checkpoint_each_superstep = true;
  eo.work_dir = dir.value().path();
  EngineOptions partial = eo;
  partial.max_supersteps = 4;
  ASSERT_TRUE(Engine::run(graph, program, partial).is_ok());
  const auto resumed = Engine::run_from_csr(dir.value().file("graph.csr"),
                                            program, eo, /*resume=*/true);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  expect_payloads_equal(resumed.value().values,
                        oracle_bfs_levels(Csr::from_edges(graph), 0));
}

TEST(CrashRecovery, ResumedPageRankKeepsGraphScaledTeleport) {
  // PageRank caches (1-d)/N during init(); a resumed run never
  // re-initializes values, but must still see the vertex count — with an
  // unscaled teleport every touched rank would jump to >= 0.15.
  const EdgeList graph = rmat(8, 3000, 88);  // N = 256
  const PageRankProgram program(6);
  auto dir = ScratchDir::create("prresume");
  ASSERT_TRUE(dir.is_ok());
  EngineOptions eo;
  eo.num_dispatchers = 2;
  eo.num_computers = 2;
  eo.scheduler_workers = 2;
  eo.checkpoint_each_superstep = true;
  eo.work_dir = dir.value().path();
  EngineOptions partial = eo;
  partial.max_supersteps = 2;
  ASSERT_TRUE(Engine::run(graph, program, partial).is_ok());
  EngineOptions rest = eo;
  rest.max_supersteps = 4;
  const auto resumed =
      Engine::run_from_csr(dir.value().file("graph.csr"), program, rest,
                           /*resume=*/true);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  double total = 0.0;
  for (Payload p : resumed.value().values) {
    const double rank = payload_to_float(p);
    ASSERT_LT(rank, 0.12) << "teleport term lost its 1/N scaling";
    total += rank;
  }
  // Rank mass stays near 1 (recovery re-dispatch can only add the odd
  // dangling contribution).
  EXPECT_GT(total, 0.5);
  EXPECT_LT(total, 1.6);
}

}  // namespace
}  // namespace gpsa
