// Unit tests for the vertex programs and the sequential reference
// executor, validated against independent classic-algorithm oracles.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/pagerank.hpp"
#include "apps/reference.hpp"
#include "apps/sssp.hpp"
#include "apps/weights.hpp"
#include "graph/generators.hpp"
#include "test_support.hpp"

namespace gpsa {
namespace {

using testing::diamond_graph;
using testing::expect_float_payloads_near;
using testing::expect_payloads_equal;

// --- Program hook semantics --------------------------------------------------

TEST(BfsProgram, Hooks) {
  const BfsProgram bfs(3);
  EXPECT_EQ(bfs.init(3, 10).value, 0U);
  EXPECT_TRUE(bfs.init(3, 10).active);
  EXPECT_EQ(bfs.init(0, 10).value, kPayloadInfinity);
  EXPECT_FALSE(bfs.init(0, 10).active);
  EXPECT_EQ(bfs.gen_msg(0, 1, 4, 7), 5U);
  EXPECT_EQ(bfs.gen_msg(0, 1, kPayloadInfinity, 1), kPayloadInfinity);
  EXPECT_EQ(bfs.compute(3, 9), 3U);
  EXPECT_TRUE(bfs.changed(5, 4));
  EXPECT_FALSE(bfs.changed(4, 4));
  EXPECT_FALSE(bfs.changed(4, 5));
}

TEST(CcProgram, Hooks) {
  const ConnectedComponentsProgram cc;
  EXPECT_EQ(cc.init(7, 10).value, 7U);
  EXPECT_TRUE(cc.init(7, 10).active);
  EXPECT_EQ(cc.gen_msg(7, 2, 3, 4), 3U);
  EXPECT_EQ(cc.compute(5, 2), 2U);
  EXPECT_EQ(cc.first_update(1, 9), 9U);
}

TEST(PageRankProgram, Hooks) {
  const PageRankProgram pr(5);
  const auto init = pr.init(0, 4);
  EXPECT_TRUE(init.active);
  EXPECT_FLOAT_EQ(payload_to_float(init.value), 0.25F);
  // gen_msg divides by out-degree and applies damping.
  const Payload msg = pr.gen_msg(0, 1, float_to_payload(0.4F), 2);
  EXPECT_FLOAT_EQ(payload_to_float(msg), 0.85F * 0.4F / 2.0F);
  // first_update seeds with the teleport term (set by init for N=4).
  EXPECT_FLOAT_EQ(payload_to_float(pr.first_update(0, 0)), 0.15F / 4.0F);
  EXPECT_TRUE(pr.changed(1, 1));
  EXPECT_EQ(pr.max_supersteps(), 5U);
}

TEST(SsspProgram, HooksAndWeights) {
  const SsspProgram sssp(0);
  const std::uint32_t w = synthetic_edge_weight(3, 4);
  EXPECT_GE(w, 1U);
  EXPECT_LE(w, 16U);
  EXPECT_EQ(synthetic_edge_weight(3, 4), w);  // deterministic
  EXPECT_EQ(sssp.gen_msg(3, 4, 10, 1), 10 + w);
  EXPECT_EQ(sssp.gen_msg(3, 4, kPayloadInfinity - 2, 1), kPayloadInfinity);
}

// --- Reference executor vs oracles ------------------------------------------

TEST(Reference, BfsMatchesOracleOnFamilies) {
  for (const EdgeList& g :
       {diamond_graph(), chain(32), grid(6, 7), binary_tree(31),
        rmat(9, 4000, 3)}) {
    const Csr csr = Csr::from_edges(g);
    const ReferenceResult ref = reference_run(csr, BfsProgram(0));
    expect_payloads_equal(ref.values, oracle_bfs_levels(csr, 0));
    EXPECT_TRUE(ref.converged);
  }
}

TEST(Reference, BfsFromNonzeroRoot) {
  const Csr csr = Csr::from_edges(grid(5, 5));
  const ReferenceResult ref = reference_run(csr, BfsProgram(12));
  expect_payloads_equal(ref.values, oracle_bfs_levels(csr, 12));
}

TEST(Reference, CcMatchesOracle) {
  for (const EdgeList& g :
       {star(16), grid(4, 9), rmat(8, 1200, 11), erdos_renyi(200, 300, 2)}) {
    const Csr csr = Csr::from_edges(g);
    const ReferenceResult ref =
        reference_run(csr, ConnectedComponentsProgram());
    expect_payloads_equal(ref.values, oracle_min_label(csr));
    EXPECT_TRUE(ref.converged);
  }
}

TEST(Reference, SsspMatchesDijkstra) {
  for (const EdgeList& g :
       {diamond_graph(), grid(8, 8), rmat(9, 5000, 17)}) {
    const Csr csr = Csr::from_edges(g);
    const ReferenceResult ref = reference_run(csr, SsspProgram(0));
    expect_payloads_equal(ref.values, oracle_sssp(csr, 0));
  }
}

TEST(Reference, PageRankMatchesDoubleOracle) {
  const EdgeList g = rmat(9, 6000, 23);
  const Csr csr = Csr::from_edges(g);
  const ReferenceResult ref = reference_run(csr, PageRankProgram(10));
  expect_float_payloads_near(ref.values, oracle_pagerank(csr, 10), 1e-3);
}

TEST(Reference, PageRankMassApproachesOne) {
  // With few dangling vertices, total rank stays near 1.
  EdgeList g = complete(50);
  const Csr csr = Csr::from_edges(g);
  const ReferenceResult ref = reference_run(csr, PageRankProgram(15));
  double total = 0;
  for (Payload p : ref.values) {
    total += payload_to_float(p);
  }
  EXPECT_NEAR(total, 1.0, 1e-3);
}

TEST(Reference, BudgetStopsEarly) {
  const Csr csr = Csr::from_edges(chain(100));
  const ReferenceResult ref = reference_run(csr, BfsProgram(0), 10);
  EXPECT_EQ(ref.supersteps, 10U);
  EXPECT_FALSE(ref.converged);
  EXPECT_EQ(ref.values[10], 10U);
  EXPECT_EQ(ref.values[11], kPayloadInfinity);
}

TEST(Reference, MessageCountsMatchActiveDegrees) {
  // Superstep 0 of PageRank sends exactly |E| non-dangling messages.
  const EdgeList g = rmat(8, 2000, 29);
  const Csr csr = Csr::from_edges(g);
  const ReferenceResult ref = reference_run(csr, PageRankProgram(1));
  EXPECT_EQ(ref.superstep_messages[0], g.num_edges());
}

TEST(Reference, IsolatedVerticesUntouched) {
  EdgeList g = chain(4);
  g.ensure_vertices(8);  // vertices 4..7 isolated
  const Csr csr = Csr::from_edges(g);
  const ReferenceResult bfs = reference_run(csr, BfsProgram(0));
  for (VertexId v = 4; v < 8; ++v) {
    EXPECT_EQ(bfs.values[v], kPayloadInfinity);
  }
  const ReferenceResult cc =
      reference_run(csr, ConnectedComponentsProgram());
  for (VertexId v = 4; v < 8; ++v) {
    EXPECT_EQ(cc.values[v], v);  // own label: never reached
  }
}

TEST(Weights, DistributionCoversRange) {
  std::vector<int> seen(17, 0);
  for (VertexId u = 0; u < 100; ++u) {
    for (VertexId v = 0; v < 20; ++v) {
      ++seen[synthetic_edge_weight(u, v)];
    }
  }
  for (int w = 1; w <= 16; ++w) {
    EXPECT_GT(seen[w], 0) << "weight " << w << " never generated";
  }
}

}  // namespace
}  // namespace gpsa
