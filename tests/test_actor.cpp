// Unit and stress tests for the actor runtime: mailbox delivery order,
// scheduler fairness, wakeup races, and cross-actor messaging patterns
// (ping-pong, fan-in) resembling the engine's dispatcher/computer flow.
//
// Every scheduler-facing test runs under BOTH run-queue substrates
// (SchedulerMode::kGlobalQueue and kWorkStealing) via TEST_P, so the
// ablation fallback stays as correct as the default. Single-threaded
// properties of the Chase–Lev deque (LIFO/FIFO ends, growth, overflow)
// are covered here; the multi-thief races live in test_sanitize_stress.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <vector>

#include "actor/actor_system.hpp"
#include "actor/work_stealing_deque.hpp"

namespace gpsa {
namespace {

class SchedulerModeTest : public ::testing::TestWithParam<SchedulerMode> {};

INSTANTIATE_TEST_SUITE_P(
    BothSubstrates, SchedulerModeTest,
    ::testing::Values(SchedulerMode::kGlobalQueue,
                      SchedulerMode::kWorkStealing),
    [](const ::testing::TestParamInfo<SchedulerMode>& param) {
      return scheduler_mode_name(param.param);
    });

/// Records received ints; fulfils a promise at a target count.
class CollectorActor final : public Actor<int> {
 public:
  explicit CollectorActor(std::size_t expected) : expected_(expected) {}

  std::future<std::vector<int>> future() { return promise_.get_future(); }

 protected:
  void on_message(int value) override {
    received_.push_back(value);
    if (received_.size() == expected_) {
      promise_.set_value(received_);
    }
  }

 private:
  std::size_t expected_;
  std::vector<int> received_;
  std::promise<std::vector<int>> promise_;
};

TEST_P(SchedulerModeTest, DeliversInOrderFromOneSender) {
  ActorSystem system(2, 256, GetParam());
  auto* collector = system.spawn<CollectorActor>(1000U);
  auto future = collector->future();
  for (int i = 0; i < 1000; ++i) {
    collector->send(i);
  }
  const auto received = future.get();
  ASSERT_EQ(received.size(), 1000U);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(received[i], i);
  }
  system.shutdown();
}

TEST_P(SchedulerModeTest, FanInFromManyThreadsDeliversAll) {
  constexpr int kSenders = 8;
  constexpr int kEach = 5000;
  ActorSystem system(4, 256, GetParam());
  auto* collector = system.spawn<CollectorActor>(
      static_cast<std::size_t>(kSenders * kEach));
  auto future = collector->future();
  std::vector<std::thread> senders;
  for (int t = 0; t < kSenders; ++t) {
    senders.emplace_back([collector, t] {
      for (int i = 0; i < kEach; ++i) {
        collector->send(t * kEach + i);
      }
    });
  }
  const auto received = future.get();
  for (auto& t : senders) {
    t.join();
  }
  // All distinct values must arrive exactly once.
  std::vector<int> sorted = received;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < kSenders * kEach; ++i) {
    ASSERT_EQ(sorted[i], i);
  }
  system.shutdown();
}

/// Forwards each message to a peer, decrementing; used for ping-pong.
class RelayActor final : public Actor<int> {
 public:
  void set_peer(Actor<int>* peer) { peer_ = peer; }
  std::future<void> done() { return promise_.get_future(); }

 protected:
  void on_message(int remaining) override {
    if (remaining == 0) {
      promise_.set_value();
      return;
    }
    peer_->send(remaining - 1);
  }

 private:
  Actor<int>* peer_ = nullptr;
  std::promise<void> promise_;
};

TEST_P(SchedulerModeTest, PingPongTerminates) {
  ActorSystem system(2, 256, GetParam());
  auto* a = system.spawn<RelayActor>();
  auto* b = system.spawn<RelayActor>();
  a->set_peer(b);
  b->set_peer(a);
  auto done_a = a->done();
  auto done_b = b->done();
  a->send(100'001);  // odd count: terminates at b
  done_b.get();
  system.shutdown();
}

TEST_P(SchedulerModeTest, ThousandsOfActorsAllRun) {
  // The paper claims "scalable parallelism with thousands of actors";
  // spawn 2000 collectors and touch each once.
  constexpr int kActors = 2000;
  ActorSystem system(4, 256, GetParam());
  std::vector<CollectorActor*> actors;
  std::vector<std::future<std::vector<int>>> futures;
  actors.reserve(kActors);
  for (int i = 0; i < kActors; ++i) {
    actors.push_back(system.spawn<CollectorActor>(1U));
    futures.push_back(actors.back()->future());
  }
  for (int i = 0; i < kActors; ++i) {
    actors[i]->send(i);
  }
  for (int i = 0; i < kActors; ++i) {
    const auto got = futures[i].get();
    ASSERT_EQ(got.size(), 1U);
    EXPECT_EQ(got[0], i);
  }
  system.shutdown();
}

/// Counts messages; never completes a promise (for fairness test).
class CountingActor final : public Actor<int> {
 public:
  std::atomic<std::uint64_t> count{0};

 protected:
  void on_message(int) override {
    count.fetch_add(1, std::memory_order_relaxed);
  }
};

TEST_P(SchedulerModeTest, BatchBoundPreventsStarvation) {
  // One worker, tiny batches: a flooded actor must not starve a second
  // actor whose single message arrives after the flood begins.
  ActorSystem system(1, /*batch_size=*/8, GetParam());
  auto* flooded = system.spawn<CountingActor>();
  auto* starved = system.spawn<CollectorActor>(1U);
  auto future = starved->future();
  for (int i = 0; i < 100'000; ++i) {
    flooded->send(i);
  }
  starved->send(7);
  // If the scheduler let `flooded` run to completion in one slice, this
  // future would still resolve, but only after all 100k messages; the
  // batch bound (and, in stealing mode, the fairness tick that services
  // the injector) makes it resolve promptly. Either way it must resolve.
  const auto got = future.get();
  EXPECT_EQ(got[0], 7);
  system.shutdown();
  EXPECT_GT(system.scheduler().slices_executed(), 100'000U / 8 / 2);
}

TEST_P(SchedulerModeTest, TwoFloodedActorsShareOneWorker) {
  // Both actors continuously re-enqueue themselves on a single worker. In
  // stealing mode the re-enqueue is a local LIFO push, so without the
  // fairness tick one actor could monopolize the worker forever; this
  // pins the anti-starvation guarantee for the self-re-enqueue shape.
  ActorSystem system(1, /*batch_size=*/4, GetParam());
  auto* first = system.spawn<CountingActor>();
  auto* second = system.spawn<CountingActor>();
  for (int i = 0; i < 20'000; ++i) {
    first->send(i);
    second->send(i);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((first->count.load() < 20'000 || second->count.load() < 20'000) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(first->count.load(), 20'000U);
  EXPECT_EQ(second->count.load(), 20'000U);
  system.shutdown();
}

TEST_P(SchedulerModeTest, PingStormOneProducerManyWorkers) {
  // Wake-path regression (ISSUE 2 satellite): one producer sends isolated
  // single messages with pauses long enough for every worker to park
  // between sends. Each send must produce exactly one effective wakeup; a
  // lost notify_one (global mode: notify racing the cv_ wait predicate;
  // stealing mode: a parked bit set after the enqueuer's bitmap read)
  // strands the message and hangs the final future, which the ctest
  // timeout turns into a hard failure.
  constexpr int kPings = 600;
  ActorSystem system(4, 256, GetParam());
  auto* collector = system.spawn<CollectorActor>(kPings);
  auto future = collector->future();
  for (int i = 0; i < kPings; ++i) {
    collector->send(i);
    if (i % 3 == 0) {
      // Long enough for all four workers to run dry and park.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  const auto received = future.get();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kPings));
  system.shutdown();
}

TEST_P(SchedulerModeTest, StopIsIdempotent) {
  ActorSystem system(2, 256, GetParam());
  auto* collector = system.spawn<CollectorActor>(1U);
  collector->send(1);
  system.shutdown();
  system.shutdown();  // second call must be a no-op
}

TEST_P(SchedulerModeTest, MailboxSizeVisible) {
  ActorSystem system(1, 256, GetParam());
  // Block the single worker with a long-running actor message so queued
  // messages are observable.
  class Blocker final : public Actor<int> {
   public:
    std::atomic<bool> release{false};

   protected:
    void on_message(int) override {
      while (!release.load()) {
        std::this_thread::yield();
      }
    }
  };
  auto* blocker = system.spawn<Blocker>();
  blocker->send(0);  // occupies the worker
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  blocker->send(1);
  blocker->send(2);
  EXPECT_GE(blocker->mailbox_size(), 2U);
  blocker->release.store(true);
  system.shutdown();
}

TEST(SchedulerEnv, ModeFromEnvParsesBothSpellings) {
  EXPECT_STREQ(scheduler_mode_name(SchedulerMode::kGlobalQueue), "global");
  EXPECT_STREQ(scheduler_mode_name(SchedulerMode::kWorkStealing), "stealing");
  ::setenv("GPSA_SCHEDULER", "global", 1);
  EXPECT_EQ(scheduler_mode_from_env(), SchedulerMode::kGlobalQueue);
  ::setenv("GPSA_SCHEDULER", "stealing", 1);
  EXPECT_EQ(scheduler_mode_from_env(), SchedulerMode::kWorkStealing);
  ::unsetenv("GPSA_SCHEDULER");
  EXPECT_EQ(scheduler_mode_from_env(), SchedulerMode::kWorkStealing);
}

// --- WorkStealingDeque single-thread properties ------------------------------

TEST(WorkStealingDeque, OwnerEndIsLifoStealEndIsFifo) {
  WorkStealingDeque<int> deque(8, 64);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(deque.push(i));
  }
  EXPECT_EQ(deque.approx_size(), 5U);
  EXPECT_EQ(deque.pop(), 5);    // owner: newest first
  EXPECT_EQ(deque.steal(), 1);  // thief: oldest first
  EXPECT_EQ(deque.pop(), 4);
  EXPECT_EQ(deque.steal(), 2);
  EXPECT_EQ(deque.pop(), 3);
  EXPECT_EQ(deque.pop(), std::nullopt);
  EXPECT_EQ(deque.steal(), std::nullopt);
  EXPECT_TRUE(deque.approx_empty());
}

TEST(WorkStealingDeque, GrowsByDoublingAndPreservesContents) {
  WorkStealingDeque<int> deque(4, 1024);
  EXPECT_EQ(deque.capacity(), 4U);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(deque.push(i));
  }
  EXPECT_EQ(deque.capacity(), 128U);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(deque.steal(), i);  // FIFO across every growth boundary
  }
  EXPECT_TRUE(deque.approx_empty());
}

TEST(WorkStealingDeque, PushFailsAtMaxCapacityThenRecovers) {
  WorkStealingDeque<int> deque(4, 8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(deque.push(i));
  }
  EXPECT_FALSE(deque.push(8));  // full at max: caller must overflow
  EXPECT_EQ(deque.approx_size(), 8U);
  EXPECT_EQ(deque.pop(), 7);
  EXPECT_TRUE(deque.push(8));  // space again after a pop
  EXPECT_EQ(deque.pop(), 8);
}

TEST(WorkStealingDeque, InterleavedPushPopNeverLosesItems) {
  WorkStealingDeque<std::uint64_t> deque(8, 4096);
  std::uint64_t next = 0;
  std::uint64_t seen = 0;
  std::uint64_t expect_sum = 0;
  for (int round = 0; round < 1000; ++round) {
    const int pushes = 1 + (round % 3);
    for (int i = 0; i < pushes; ++i) {
      expect_sum += next;
      ASSERT_TRUE(deque.push(next++));
    }
    if (round % 2 == 0) {
      if (auto v = deque.pop()) {
        seen += *v;
      }
    } else {
      if (auto v = deque.steal()) {
        seen += *v;
      }
    }
  }
  while (auto v = deque.pop()) {
    seen += *v;
  }
  EXPECT_EQ(seen, expect_sum);
}

}  // namespace
}  // namespace gpsa
