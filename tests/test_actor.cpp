// Unit and stress tests for the actor runtime: mailbox delivery order,
// scheduler fairness, wakeup races, and cross-actor messaging patterns
// (ping-pong, fan-in) resembling the engine's dispatcher/computer flow.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <vector>

#include "actor/actor_system.hpp"

namespace gpsa {
namespace {

/// Records received ints; fulfils a promise at a target count.
class CollectorActor final : public Actor<int> {
 public:
  explicit CollectorActor(std::size_t expected) : expected_(expected) {}

  std::future<std::vector<int>> future() { return promise_.get_future(); }

 protected:
  void on_message(int value) override {
    received_.push_back(value);
    if (received_.size() == expected_) {
      promise_.set_value(received_);
    }
  }

 private:
  std::size_t expected_;
  std::vector<int> received_;
  std::promise<std::vector<int>> promise_;
};

TEST(Actor, DeliversInOrderFromOneSender) {
  ActorSystem system(2);
  auto* collector = system.spawn<CollectorActor>(1000U);
  auto future = collector->future();
  for (int i = 0; i < 1000; ++i) {
    collector->send(i);
  }
  const auto received = future.get();
  ASSERT_EQ(received.size(), 1000U);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(received[i], i);
  }
  system.shutdown();
}

TEST(Actor, FanInFromManyThreadsDeliversAll) {
  constexpr int kSenders = 8;
  constexpr int kEach = 5000;
  ActorSystem system(4);
  auto* collector = system.spawn<CollectorActor>(
      static_cast<std::size_t>(kSenders * kEach));
  auto future = collector->future();
  std::vector<std::thread> senders;
  for (int t = 0; t < kSenders; ++t) {
    senders.emplace_back([collector, t] {
      for (int i = 0; i < kEach; ++i) {
        collector->send(t * kEach + i);
      }
    });
  }
  const auto received = future.get();
  for (auto& t : senders) {
    t.join();
  }
  // All distinct values must arrive exactly once.
  std::vector<int> sorted = received;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < kSenders * kEach; ++i) {
    ASSERT_EQ(sorted[i], i);
  }
  system.shutdown();
}

/// Forwards each message to a peer, decrementing; used for ping-pong.
class RelayActor final : public Actor<int> {
 public:
  void set_peer(Actor<int>* peer) { peer_ = peer; }
  std::future<void> done() { return promise_.get_future(); }

 protected:
  void on_message(int remaining) override {
    if (remaining == 0) {
      promise_.set_value();
      return;
    }
    peer_->send(remaining - 1);
  }

 private:
  Actor<int>* peer_ = nullptr;
  std::promise<void> promise_;
};

TEST(Actor, PingPongTerminates) {
  ActorSystem system(2);
  auto* a = system.spawn<RelayActor>();
  auto* b = system.spawn<RelayActor>();
  a->set_peer(b);
  b->set_peer(a);
  auto done_a = a->done();
  auto done_b = b->done();
  a->send(100'001);  // odd count: terminates at b
  done_b.get();
  system.shutdown();
}

TEST(Actor, ThousandsOfActorsAllRun) {
  // The paper claims "scalable parallelism with thousands of actors";
  // spawn 2000 collectors and touch each once.
  constexpr int kActors = 2000;
  ActorSystem system(4);
  std::vector<CollectorActor*> actors;
  std::vector<std::future<std::vector<int>>> futures;
  actors.reserve(kActors);
  for (int i = 0; i < kActors; ++i) {
    actors.push_back(system.spawn<CollectorActor>(1U));
    futures.push_back(actors.back()->future());
  }
  for (int i = 0; i < kActors; ++i) {
    actors[i]->send(i);
  }
  for (int i = 0; i < kActors; ++i) {
    const auto got = futures[i].get();
    ASSERT_EQ(got.size(), 1U);
    EXPECT_EQ(got[0], i);
  }
  system.shutdown();
}

/// Counts messages; never completes a promise (for fairness test).
class CountingActor final : public Actor<int> {
 public:
  std::atomic<std::uint64_t> count{0};

 protected:
  void on_message(int) override {
    count.fetch_add(1, std::memory_order_relaxed);
  }
};

TEST(Scheduler, BatchBoundPreventsStarvation) {
  // One worker, tiny batches: a flooded actor must not starve a second
  // actor whose single message arrives after the flood begins.
  ActorSystem system(1, /*batch_size=*/8);
  auto* flooded = system.spawn<CountingActor>();
  auto* starved = system.spawn<CollectorActor>(1U);
  auto future = starved->future();
  for (int i = 0; i < 100'000; ++i) {
    flooded->send(i);
  }
  starved->send(7);
  // If the scheduler let `flooded` run to completion in one slice, this
  // future would still resolve, but only after all 100k messages; the
  // batch bound makes it resolve promptly. Either way it must resolve.
  const auto got = future.get();
  EXPECT_EQ(got[0], 7);
  system.shutdown();
  EXPECT_GT(system.scheduler().slices_executed(), 100'000U / 8 / 2);
}

TEST(Scheduler, StopIsIdempotent) {
  ActorSystem system(2);
  auto* collector = system.spawn<CollectorActor>(1U);
  collector->send(1);
  system.shutdown();
  system.shutdown();  // second call must be a no-op
}

TEST(Actor, MailboxSizeVisible) {
  ActorSystem system(1);
  // Block the single worker with a long-running actor message so queued
  // messages are observable.
  class Blocker final : public Actor<int> {
   public:
    std::atomic<bool> release{false};

   protected:
    void on_message(int) override {
      while (!release.load()) {
        std::this_thread::yield();
      }
    }
  };
  auto* blocker = system.spawn<Blocker>();
  blocker->send(0);  // occupies the worker
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  blocker->send(1);
  blocker->send(2);
  EXPECT_GE(blocker->mailbox_size(), 2U);
  blocker->release.store(true);
  system.shutdown();
}

}  // namespace
}  // namespace gpsa
