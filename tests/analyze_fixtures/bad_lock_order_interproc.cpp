// gpsa_analyze fixture: TRUE POSITIVE for lock-order, established across
// a call chain rather than inside one function.
//
// Registry::rebuild holds Registry::mu_ and calls Shard::poke, which
// takes Shard::mu_ (edge Registry::mu_ -> Shard::mu_). Shard::evict
// holds Shard::mu_ and calls back into notify_registry, which takes
// Registry::mu_ (edge Shard::mu_ -> Registry::mu_). Neither function
// sees both locks lexically; only the whole-program call graph closes
// the cycle.

struct Shard {
  void poke() {
    MutexLock l(mu_);
    ++epoch_;
  }

  void evict(struct Registry& owner);

  Mutex mu_;
  int epoch_ = 0;
};

struct Registry {
  void rebuild(Shard& shard) {
    MutexLock l(mu_);
    shard.poke();  // holding Registry::mu_, acquires Shard::mu_
  }

  void notify() {
    MutexLock l(mu_);
    ++version_;
  }

  Mutex mu_;
  int version_ = 0;
};

void notify_registry(Registry& registry) { registry.notify(); }

void Shard::evict(Registry& owner) {
  MutexLock l(mu_);
  notify_registry(owner);  // holding Shard::mu_, acquires Registry::mu_
}
