// gpsa_analyze fixture: TRUE NEGATIVE for lock-order.
//
// The same two locks as bad_lock_order.cpp, but every path takes them in
// the same global order (coarse_ before fine_), including one path that
// establishes the order across a call via GPSA_REQUIRES. A third
// function takes only one of them. No cycle exists and nothing may be
// reported.

struct Ordered {
  void both_forward() {
    MutexLock a(coarse_);
    MutexLock b(fine_);
  }

  void also_forward() {
    MutexLock a(coarse_);
    touch_fine_locked();
  }

  void touch_fine_locked() GPSA_REQUIRES(coarse_) {
    MutexLock b(fine_);
  }

  void only_fine() {
    MutexLock b(fine_);
  }

  Mutex coarse_;
  Mutex fine_;
};
