// gpsa_analyze fixture: TRUE POSITIVES for lease-balance.
//
// Leaky::drop discards the lease() result outright; Leaky::hoard keeps
// the buffer in a local that neither reaches recycle() nor is moved to
// a new owner. Both silently retire a pooled buffer from circulation —
// a steady-state pool miss in the making — and must be reported.

struct Leaky {
  void drop() {
    pool_->lease();
  }

  void hoard() {
    auto buffer = pool_->lease();
    buffer.clear();
    count_ += static_cast<int>(buffer.capacity());
  }

  MessageBatchPool* pool_ = nullptr;
  int count_ = 0;
};
