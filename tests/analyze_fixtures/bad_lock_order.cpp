// gpsa_analyze fixture: TRUE POSITIVE for lock-order.
//
// Two methods of the same class take the same pair of mutexes in
// opposite orders — the textbook AB/BA deadlock. The analyzer must
// report one acquisition-order cycle between PairOne::first_ and
// PairOne::second_.
//
// Fixtures are analyzed, never compiled; they use the project's Mutex /
// MutexLock spellings directly.

struct PairOne {
  void forward() {
    MutexLock a(first_);
    MutexLock b(second_);  // establishes first_ -> second_
  }

  void backward() {
    MutexLock b(second_);
    MutexLock a(first_);  // establishes second_ -> first_: cycle
  }

  Mutex first_;
  Mutex second_;
};
