// gpsa_analyze fixture: TRUE NEGATIVES for lease-balance.
//
// Every lease is balanced: recycled in-function, std::move()d into a
// message (ownership transfer to the mailbox), or carrying an explicit
// transfer note for a staging slot shipped by a later flush. None of
// these may be reported.

void balanced(MessageBatchPool& pool) {
  auto buffer = pool.lease();
  buffer.push_back(VertexMessage{1, 2});
  pool.recycle(std::move(buffer));
}

struct Shipper {
  void ship() {
    ComputerMsg msg;
    msg.batch = pool_->lease();
    msg.batch.push_back(VertexMessage{3, 4});
    peer_->send(std::move(msg));
  }

  void stage() {
    staging_ = pool_->lease();  // gpsa-analyze: transfer(staging slot; shipped by the flush path)
  }

  MessageBatchPool* pool_ = nullptr;
  Actor* peer_ = nullptr;
  std::vector<VertexMessage> staging_;
};
