// gpsa_analyze fixture: TRUE POSITIVES for actor-blocking.
//
// SleepyActor::on_message reaches a sleep through a helper (the path
// must survive one call hop); WaityActor::execute_batch parks on a
// condition variable directly. Both hold a scheduler worker hostage and
// must be reported.

struct SleepyActor {
  void on_message() {
    settle();
  }

  void settle() {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
};

struct WaityActor {
  void execute_batch() {
    MutexLock l(mu_);
    while (!ready_) {
      cv_.wait(l);
    }
  }

  Mutex mu_;
  CondVar cv_;
  bool ready_ = false;
};
