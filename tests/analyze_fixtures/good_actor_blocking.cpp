// gpsa_analyze fixture: TRUE NEGATIVES for actor-blocking.
//
// PoliteActor does only compute work. DeferredActor hands a blocking
// lambda to a worker pool — the sleep executes on the pool's thread,
// not the actor's, so attributing it to on_message would be a false
// positive. FencedActor blocks at a documented fence with the inline
// escape. None of these may be reported.

struct PoliteActor {
  void on_message() {
    accumulate();
  }

  void accumulate() {
    for (int i = 0; i < 64; ++i) {
      total_ += i;
    }
  }

  long total_ = 0;
};

struct DeferredActor {
  void on_message() {
    pool_->submit([this] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++drained_;
    });
  }

  IoThreadPool* pool_ = nullptr;
  int drained_ = 0;
};

struct FencedActor {
  void on_message() {
    fence_.wait(ticket_);  // gpsa-analyze: allow(actor-blocking)
  }

  Fence fence_;
  int ticket_ = 0;
};
