// GraphService integration tests: concurrent jobs over one shared CSR
// must produce bit-identical results to sequential Engine runs, keep
// per-job RunResults isolated, honor cooperative cancel at superstep
// boundaries, reject submissions past the admission limit, and keep a
// resident job progressing under a burst of short queries (fair share).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/multi_bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "service/graph_service.hpp"
#include "test_support.hpp"

namespace gpsa {
namespace {

using testing::expect_payloads_equal;

// One dispatcher + one computer per job: every mailbox has a single
// sender, so fold order is deterministic and even PageRank's sum fold is
// bit-identical to a sequential engine run at the same shape
// (test_engine.cpp SingleDispatcherSingleComputer precedent). Job-level
// concurrency still exercises the shared scheduler: multiple jobs'
// actors interleave on the same workers.
ServiceOptions small_service_options() {
  ServiceOptions so;
  so.num_dispatchers = 1;
  so.num_computers = 1;
  so.scheduler_workers = 4;
  so.max_concurrent_jobs = 4;
  so.message_batch = 64;  // small batches exercise flush paths
  return so;
}

EngineOptions matching_engine_options(const ServiceOptions& so) {
  EngineOptions eo;
  eo.num_dispatchers = so.num_dispatchers;
  eo.num_computers = so.num_computers;
  eo.scheduler_workers = 1;
  eo.message_batch = so.message_batch;
  eo.partition = so.partition;
  return eo;
}

std::unique_ptr<GraphService> open_service(const EdgeList& graph,
                                           const ServiceOptions& so) {
  auto service = GraphService::open_from_edges(graph, so);
  EXPECT_TRUE(service.is_ok()) << service.status().to_string();
  return std::move(service).value();
}

std::vector<Payload> engine_baseline(const GraphService& service,
                                     const Program& program,
                                     const EngineOptions& eo) {
  auto result = Engine::run_from_csr(service.csr_path(), program, eo);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return std::move(result).value().values;
}

// Polls `pred` (which sees a fresh JobStatus) until it holds or the
// deadline passes. Terminal-state waits use wait() instead.
template <typename Pred>
bool poll_until(GraphService& service, JobId id, Pred pred,
                std::chrono::seconds deadline = std::chrono::seconds(60)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    auto status = service.poll(id);
    if (!status.is_ok()) {
      return false;
    }
    if (pred(status.value())) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(GraphService, SingleJobMatchesEngineBaseline) {
  const EdgeList graph = rmat(8, 1500, /*seed=*/3);
  const ServiceOptions so = small_service_options();
  auto service = open_service(graph, so);

  auto id = service->submit(std::make_shared<const BfsProgram>(0));
  ASSERT_TRUE(id.is_ok()) << id.status().to_string();
  auto status = service->wait(id.value());
  ASSERT_TRUE(status.is_ok()) << status.status().to_string();
  ASSERT_EQ(status.value().state, JobState::kDone);
  ASSERT_NE(status.value().result, nullptr);
  const RunResult& run = *status.value().result;
  EXPECT_TRUE(run.converged);
  EXPECT_FALSE(run.cancelled);

  const auto baseline =
      engine_baseline(*service, BfsProgram(0), matching_engine_options(so));
  expect_payloads_equal(run.values, baseline);

  // Service-side latency metrics are populated and ordered sensibly.
  EXPECT_GE(run.queue_wait_seconds, 0.0);
  EXPECT_GE(run.end_to_end_seconds, run.elapsed_seconds);
}

TEST(GraphService, ConcurrentJobsBitIdenticalToSequential) {
  const EdgeList graph = rmat(8, 1500, /*seed=*/3);
  const ServiceOptions so = small_service_options();
  auto service = open_service(graph, so);
  const EngineOptions eo = matching_engine_options(so);

  // A mixed tenant population, all in flight at once: a longer PageRank
  // plus short BFS/SSSP/multi-BFS queries from arbitrary roots.
  std::vector<std::shared_ptr<const Program>> programs;
  programs.push_back(std::make_shared<const PageRankProgram>(10));
  for (const VertexId root : {0U, 1U, 5U, 17U, 63U, 200U}) {
    programs.push_back(std::make_shared<const BfsProgram>(root));
  }
  programs.push_back(std::make_shared<const SsspProgram>(2));
  programs.push_back(std::make_shared<const MultiSourceReachabilityProgram>(
      std::vector<VertexId>{1, 2, 3}));

  std::vector<JobId> ids;
  for (const auto& program : programs) {
    auto id = service->submit(program);
    ASSERT_TRUE(id.is_ok()) << id.status().to_string();
    ids.push_back(id.value());
  }

  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto status = service->wait(ids[i]);
    ASSERT_TRUE(status.is_ok()) << status.status().to_string();
    ASSERT_EQ(status.value().state, JobState::kDone)
        << "job " << i << ": " << status.value().error.to_string();
    ASSERT_NE(status.value().result, nullptr);
    const auto baseline = engine_baseline(*service, *programs[i], eo);
    expect_payloads_equal(status.value().result->values, baseline);
  }

  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.submitted, ids.size());
  EXPECT_EQ(stats.completed, ids.size());
  EXPECT_EQ(stats.failed, 0U);
  EXPECT_EQ(stats.queued, 0U);
  EXPECT_EQ(stats.running, 0U);
}

TEST(GraphService, PerJobResultsAreIsolated) {
  const EdgeList graph = rmat(8, 1500, /*seed=*/3);
  const ServiceOptions so = small_service_options();
  auto service = open_service(graph, so);
  const EngineOptions eo = matching_engine_options(so);

  auto a = service->submit(std::make_shared<const BfsProgram>(0));
  auto b = service->submit(std::make_shared<const BfsProgram>(200));
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  auto sa = service->wait(a.value());
  auto sb = service->wait(b.value());
  ASSERT_TRUE(sa.is_ok() && sb.is_ok());
  ASSERT_EQ(sa.value().state, JobState::kDone);
  ASSERT_EQ(sb.value().state, JobState::kDone);

  // Distinct result objects, each matching its own sequential baseline —
  // nothing leaked across the two jobs' value files or mailboxes.
  ASSERT_NE(sa.value().result, sb.value().result);
  expect_payloads_equal(sa.value().result->values,
                        engine_baseline(*service, BfsProgram(0), eo));
  expect_payloads_equal(sb.value().result->values,
                        engine_baseline(*service, BfsProgram(200), eo));
}

TEST(GraphService, RetainValuesOffDropsPayloadsKeepsMetrics) {
  const EdgeList graph = rmat(8, 1500, /*seed=*/3);
  auto service = open_service(graph, small_service_options());

  JobOptions jo;
  jo.retain_values = false;
  auto id = service->submit(std::make_shared<const BfsProgram>(0), jo);
  ASSERT_TRUE(id.is_ok());
  auto status = service->wait(id.value());
  ASSERT_TRUE(status.is_ok());
  ASSERT_EQ(status.value().state, JobState::kDone);
  ASSERT_NE(status.value().result, nullptr);
  EXPECT_TRUE(status.value().result->values.empty());
  EXPECT_GT(status.value().result->supersteps, 0U);
  EXPECT_GT(status.value().result->end_to_end_seconds, 0.0);
}

TEST(GraphService, CancelStopsRunningJobAtSuperstepBoundary) {
  const EdgeList graph = rmat(8, 1500, /*seed=*/3);
  auto service = open_service(graph, small_service_options());

  // Effectively unbounded PageRank: only cancel can end it promptly.
  auto id =
      service->submit(std::make_shared<const PageRankProgram>(1000000));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(poll_until(*service, id.value(), [](const JobStatus& s) {
    return s.supersteps_completed >= 2;
  })) << "resident job made no progress";

  ASSERT_TRUE(service->cancel(id.value()));
  auto status = service->wait(id.value());
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(status.value().state, JobState::kCancelled);
  ASSERT_NE(status.value().result, nullptr);
  EXPECT_TRUE(status.value().result->cancelled);
  EXPECT_FALSE(status.value().result->converged);
  // Stopped at a boundary long before the budget.
  EXPECT_LT(status.value().result->supersteps, 1000000U);
  // The partial values are still harvested (retain_values default).
  EXPECT_EQ(status.value().result->values.size(), service->num_vertices());

  // A second cancel of a terminal job is a no-op.
  EXPECT_FALSE(service->cancel(id.value()));
}

TEST(GraphService, CancelQueuedJobNeverRuns) {
  const EdgeList graph = rmat(8, 1500, /*seed=*/3);
  ServiceOptions so = small_service_options();
  so.max_concurrent_jobs = 1;  // one runner: the second job must queue
  auto service = open_service(graph, so);

  auto blocker =
      service->submit(std::make_shared<const PageRankProgram>(1000000));
  ASSERT_TRUE(blocker.is_ok());
  ASSERT_TRUE(poll_until(*service, blocker.value(), [](const JobStatus& s) {
    return s.state == JobState::kRunning;
  }));

  auto queued = service->submit(std::make_shared<const BfsProgram>(0));
  ASSERT_TRUE(queued.is_ok());
  ASSERT_TRUE(service->cancel(queued.value()));
  auto status = service->poll(queued.value());
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(status.value().state, JobState::kCancelled);
  EXPECT_EQ(status.value().result, nullptr);  // never reached a runner

  ASSERT_TRUE(service->cancel(blocker.value()));
  auto bstatus = service->wait(blocker.value());
  ASSERT_TRUE(bstatus.is_ok());
  EXPECT_EQ(bstatus.value().state, JobState::kCancelled);
  EXPECT_EQ(service->stats().cancelled, 2U);
}

TEST(GraphService, AdmissionControlRejectsWhenQueueFull) {
  const EdgeList graph = rmat(8, 1500, /*seed=*/3);
  ServiceOptions so = small_service_options();
  so.max_concurrent_jobs = 1;
  so.max_queued_jobs = 1;
  auto service = open_service(graph, so);

  auto blocker =
      service->submit(std::make_shared<const PageRankProgram>(1000000));
  ASSERT_TRUE(blocker.is_ok());
  ASSERT_TRUE(poll_until(*service, blocker.value(), [](const JobStatus& s) {
    return s.state == JobState::kRunning;
  }));

  // One slot in the queue, then admission control pushes back.
  auto queued = service->submit(std::make_shared<const BfsProgram>(0));
  ASSERT_TRUE(queued.is_ok());
  auto rejected = service->submit(std::make_shared<const BfsProgram>(1));
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service->stats().rejected, 1U);

  // The admitted jobs are unaffected: cancel the blocker, the queued BFS
  // runs to completion.
  ASSERT_TRUE(service->cancel(blocker.value()));
  auto status = service->wait(queued.value());
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(status.value().state, JobState::kDone);
}

TEST(GraphService, ResidentJobProgressesDuringQueryBurst) {
  const EdgeList graph = rmat(8, 1500, /*seed=*/3);
  ServiceOptions so = small_service_options();
  so.scheduler_workers = 2;  // oversubscribed: 4 jobs x 3 actors on 2 threads
  auto service = open_service(graph, so);

  auto resident =
      service->submit(std::make_shared<const PageRankProgram>(1000000));
  ASSERT_TRUE(resident.is_ok());
  ASSERT_TRUE(poll_until(*service, resident.value(), [](const JobStatus& s) {
    return s.supersteps_completed >= 1;
  }));
  const std::uint64_t before =
      service->poll(resident.value()).value().supersteps_completed;

  // Burst of short queries. The fair-share budget keeps the resident
  // job's actors scheduled while the burst drains.
  JobOptions jo;
  jo.retain_values = false;
  std::vector<JobId> burst;
  for (VertexId root = 0; root < 8; ++root) {
    auto id =
        service->submit(std::make_shared<const BfsProgram>(root * 31U), jo);
    ASSERT_TRUE(id.is_ok()) << id.status().to_string();
    burst.push_back(id.value());
  }
  for (const JobId id : burst) {
    auto status = service->wait(id);
    ASSERT_TRUE(status.is_ok());
    EXPECT_EQ(status.value().state, JobState::kDone)
        << status.value().error.to_string();
  }

  // No starvation: the resident job advanced while the burst ran. (It is
  // still running here; the service destructor cancels it.)
  ASSERT_TRUE(poll_until(*service, resident.value(),
                         [before](const JobStatus& s) {
                           return s.supersteps_completed > before;
                         }))
      << "resident job starved during query burst";
}

TEST(GraphService, ForgetDropsTerminalJobsAndValueFilesAreCleaned) {
  const EdgeList graph = rmat(8, 1500, /*seed=*/3);
  auto service = open_service(graph, small_service_options());

  auto id = service->submit(std::make_shared<const BfsProgram>(0));
  ASSERT_TRUE(id.is_ok());
  // Still queued or running: forget must refuse.
  auto status = service->wait(id.value());
  ASSERT_TRUE(status.is_ok());
  ASSERT_EQ(status.value().state, JobState::kDone);

  // Per-job scratch value files are removed once the run is harvested.
  std::size_t value_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(service->work_dir())) {
    if (entry.path().filename().string().find(".values") !=
        std::string::npos) {
      ++value_files;
    }
  }
  EXPECT_EQ(value_files, 0U);

  EXPECT_TRUE(service->forget(id.value()));
  EXPECT_FALSE(service->forget(id.value()));  // already gone
  auto gone = service->poll(id.value());
  ASSERT_FALSE(gone.is_ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
}

TEST(GraphService, RejectsColdStartAndNullProgram) {
  const EdgeList graph = rmat(8, 1500, /*seed=*/3);

  ServiceOptions cold = small_service_options();
  cold.io.cold_start = true;
  auto rejected = GraphService::open_from_edges(graph, cold);
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  auto service = open_service(graph, small_service_options());
  auto null_submit = service->submit(nullptr);
  ASSERT_FALSE(null_submit.is_ok());
  EXPECT_EQ(null_submit.status().code(), StatusCode::kInvalidArgument);

  EXPECT_FALSE(service->cancel(9999));
  auto unknown = service->poll(9999);
  ASSERT_FALSE(unknown.is_ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace gpsa
