// Integration tests for the GPSA core engine: the actor protocol
// (Algorithms 1-3), value-file column flipping, selective dispatch, and
// agreement with the sequential reference executor on all apps.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/pagerank.hpp"
#include "apps/reference.hpp"
#include "apps/sssp.hpp"
#include "core/engine.hpp"
#include "graph/csr.hpp"
#include "graph/csr_file.hpp"
#include "graph/generators.hpp"
#include "platform/file_util.hpp"
#include "test_support.hpp"

namespace gpsa {
namespace {

using testing::diamond_graph;
using testing::expect_float_payloads_near;
using testing::expect_payloads_equal;

EngineOptions small_options() {
  EngineOptions eo;
  eo.num_dispatchers = 2;
  eo.num_computers = 2;
  eo.scheduler_workers = 2;
  eo.message_batch = 4;  // tiny batches exercise the flush paths
  return eo;
}

TEST(Engine, BfsOnDiamondMatchesOracle) {
  const EdgeList graph = diamond_graph();
  const BfsProgram program(0);
  const auto result = Engine::run(graph, program, small_options());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const auto oracle =
      oracle_bfs_levels(Csr::from_edges(graph), /*root=*/0);
  expect_payloads_equal(result.value().values, oracle);
  EXPECT_TRUE(result.value().converged);
}

TEST(Engine, BfsLevelsAreCorrectValues) {
  const EdgeList graph = diamond_graph();
  const BfsProgram program(0);
  const auto result = Engine::run(graph, program, small_options());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const auto& values = result.value().values;
  EXPECT_EQ(values[0], 0U);
  EXPECT_EQ(values[1], 1U);
  EXPECT_EQ(values[2], 1U);
  EXPECT_EQ(values[3], 2U);
  EXPECT_EQ(values[4], 3U);
  EXPECT_EQ(values[5], kPayloadInfinity);  // isolated vertex unreached
}

TEST(Engine, CcOnChainFindsOneComponent) {
  // Chain symmetrized: everything collapses to label 0.
  EdgeList graph = chain(8);
  EdgeList sym;
  sym.ensure_vertices(graph.num_vertices());
  for (const Edge& e : graph.edges()) {
    sym.add_edge(e.src, e.dst);
    sym.add_edge(e.dst, e.src);
  }
  const ConnectedComponentsProgram program;
  const auto result = Engine::run(sym, program, small_options());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  for (Payload label : result.value().values) {
    EXPECT_EQ(label, 0U);
  }
  EXPECT_TRUE(result.value().converged);
}

TEST(Engine, PageRankMatchesReferenceOnRmat) {
  const EdgeList graph = rmat(9, 3000, /*seed=*/7);
  const PageRankProgram program(/*iterations=*/5);
  const auto result = Engine::run(graph, program, small_options());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ReferenceResult ref =
      reference_run(Csr::from_edges(graph), program);
  EXPECT_EQ(result.value().supersteps, ref.supersteps);
  EXPECT_EQ(result.value().total_messages, ref.total_messages);
  expect_float_payloads_near(result.value().values, ref.values);
}

TEST(Engine, BfsMatchesReferenceOnRmat) {
  const EdgeList graph = rmat(9, 4000, /*seed=*/11);
  const BfsProgram program(0);
  const auto result = Engine::run(graph, program, small_options());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ReferenceResult ref =
      reference_run(Csr::from_edges(graph), program);
  EXPECT_EQ(result.value().total_messages, ref.total_messages);
  expect_payloads_equal(result.value().values, ref.values);
}

TEST(Engine, SsspMatchesDijkstraOracle) {
  const EdgeList graph = rmat(8, 2000, /*seed=*/13);
  const SsspProgram program(0);
  const auto result = Engine::run(graph, program, small_options());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const auto oracle = oracle_sssp(Csr::from_edges(graph), /*source=*/0);
  expect_payloads_equal(result.value().values, oracle);
}

TEST(Engine, SuperstepBudgetCapsRun) {
  const EdgeList graph = chain(64);
  BfsProgram program(0);
  EngineOptions eo = small_options();
  eo.max_supersteps = 3;
  const auto result = Engine::run(graph, program, eo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().supersteps, 3U);
  EXPECT_FALSE(result.value().converged);
  // Frontier advanced exactly 3 hops.
  EXPECT_EQ(result.value().values[3], 3U);
  EXPECT_EQ(result.value().values[4], kPayloadInfinity);
}

TEST(Engine, SuperstepCapZeroMeansUncapped) {
  // 0 is "no engine-side cap", never "halt at zero": BFS must run the
  // whole chain down and converge.
  const EdgeList graph = chain(16);
  EngineOptions eo = small_options();
  eo.max_supersteps = 0;
  const auto result = Engine::run(graph, BfsProgram(0), eo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().converged);
  EXPECT_EQ(result.value().supersteps, 16U);
  EXPECT_EQ(result.value().values[15], 15U);
}

TEST(Engine, SuperstepCapOneRunsExactlyOneSuperstep) {
  const EdgeList graph = chain(16);
  EngineOptions eo = small_options();
  eo.max_supersteps = 1;
  const auto result = Engine::run(graph, BfsProgram(0), eo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().supersteps, 1U);
  EXPECT_FALSE(result.value().converged);
  EXPECT_EQ(result.value().values[1], 1U);
  EXPECT_EQ(result.value().values[2], kPayloadInfinity);
}

TEST(Engine, SmallerProgramCapWinsOverEngineCap) {
  const EdgeList graph = chain(16);
  EngineOptions eo = small_options();
  eo.max_supersteps = 10;
  const auto result = Engine::run(graph, PageRankProgram(3), eo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().supersteps, 3U);
}

TEST(Engine, ProgramCapZeroRunsZeroSupersteps) {
  // A zero *program* budget really is a zero budget (unlike the engine
  // option, where 0 means uncapped): no superstep runs, and the result is
  // the init values.
  const EdgeList graph = chain(16);
  EngineOptions eo = small_options();
  eo.max_supersteps = 0;
  const auto result = Engine::run(graph, PageRankProgram(0), eo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().supersteps, 0U);
  EXPECT_FALSE(result.value().converged);
  EXPECT_EQ(result.value().total_messages, 0U);
  for (const Payload v : result.value().values) {
    EXPECT_FLOAT_EQ(payload_to_float(v), 1.0F / 16.0F);
  }
}

TEST(Engine, MessageCountsFollowFrontier) {
  // On a chain, each BFS superstep dispatches exactly one message until
  // the tail, then a zero-message superstep terminates the run.
  const EdgeList graph = chain(5);
  const BfsProgram program(0);
  const auto result = Engine::run(graph, program, small_options());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const auto& msgs = result.value().superstep_messages;
  ASSERT_EQ(msgs.size(), 5U);
  for (std::size_t s = 0; s + 1 < msgs.size(); ++s) {
    EXPECT_EQ(msgs[s], 1U) << "superstep " << s;
  }
  EXPECT_EQ(msgs.back(), 0U);
}

TEST(Engine, SingleDispatcherSingleComputer) {
  const EdgeList graph = rmat(8, 1500, /*seed=*/3);
  const BfsProgram program(0);
  EngineOptions eo;
  eo.num_dispatchers = 1;
  eo.num_computers = 1;
  eo.scheduler_workers = 1;
  const auto result = Engine::run(graph, program, eo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ReferenceResult ref =
      reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(result.value().values, ref.values);
}

TEST(Engine, ManyActorsOnTinyGraph) {
  const EdgeList graph = diamond_graph();
  const BfsProgram program(0);
  EngineOptions eo;
  eo.num_dispatchers = 8;  // more dispatchers than non-empty intervals
  eo.num_computers = 8;
  eo.scheduler_workers = 4;
  const auto result = Engine::run(graph, program, eo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  expect_payloads_equal(result.value().values,
                        oracle_bfs_levels(Csr::from_edges(graph), 0));
}

TEST(Engine, UniformPartitionStrategy) {
  const EdgeList graph = rmat(8, 2000, /*seed=*/21);
  const ConnectedComponentsProgram program;
  EngineOptions eo = small_options();
  eo.partition = PartitionStrategy::kUniformVertices;
  const auto result = Engine::run(graph, program, eo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ReferenceResult ref =
      reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(result.value().values, ref.values);
}

TEST(Engine, RejectsZeroWorkerOptions) {
  const EdgeList graph = diamond_graph();
  const BfsProgram program(0);
  EngineOptions eo;
  eo.num_dispatchers = 0;
  const auto result = Engine::run(graph, program, eo);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Engine, RejectsEmptyGraph) {
  const EdgeList graph;
  const BfsProgram program(0);
  const auto result = Engine::run(graph, program, small_options());
  EXPECT_FALSE(result.is_ok());
}

TEST(Engine, ReportsPerSuperstepStats) {
  const EdgeList graph = rmat(8, 1000, /*seed=*/5);
  const PageRankProgram program(4);
  const auto result = Engine::run(graph, program, small_options());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const RunResult& r = result.value();
  EXPECT_EQ(r.superstep_seconds.size(), r.supersteps);
  EXPECT_EQ(r.superstep_messages.size(), r.supersteps);
  EXPECT_EQ(r.superstep_updates.size(), r.supersteps);
  std::uint64_t sum = 0;
  for (auto m : r.superstep_messages) {
    sum += m;
  }
  EXPECT_EQ(sum, r.total_messages);
  EXPECT_GT(r.elapsed_seconds, 0.0);
}

TEST(Engine, RunsFromFigure4bCsrWithoutDegrees) {
  // The Fig. 4b on-disk variant (no inline degrees) drives the
  // dispatcher's degree-from-offsets fallback.
  auto dir = ScratchDir::create("nodeg");
  ASSERT_TRUE(dir.is_ok());
  const EdgeList graph = rmat(8, 2200, 47);
  const std::string base = dir.value().file("g.csr");
  ASSERT_TRUE(preprocess_edges_to_csr(graph, base,
                                      /*with_degree=*/false)
                  .is_ok());
  const PageRankProgram program(5);
  EngineOptions eo = small_options();
  eo.work_dir = dir.value().path();
  const auto result = Engine::run_from_csr(base, program, eo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ReferenceResult ref =
      reference_run(Csr::from_edges(graph), program);
  expect_float_payloads_near(result.value().values, ref.values);
}

TEST(Engine, WorkDirFilesAreCreatedAndReusable) {
  auto dir = ScratchDir::create("workdir");
  ASSERT_TRUE(dir.is_ok());
  const EdgeList graph = diamond_graph();
  const BfsProgram program(0);
  EngineOptions eo = small_options();
  eo.work_dir = dir.value().path();
  ASSERT_TRUE(Engine::run(graph, program, eo).is_ok());
  EXPECT_TRUE(file_exists(dir.value().file("graph.csr")));
  EXPECT_TRUE(file_exists(dir.value().file("graph.csr.idx")));
  EXPECT_TRUE(file_exists(dir.value().file("bfs.values")));
  // Second run over the same directory (files overwritten) still works.
  const auto again = Engine::run(graph, program, eo);
  ASSERT_TRUE(again.is_ok());
  expect_payloads_equal(again.value().values,
                        oracle_bfs_levels(Csr::from_edges(graph), 0));
}

TEST(Engine, WorkingSetAndIoPopulated) {
  const EdgeList graph = rmat(8, 1200, 53);
  const PageRankProgram program(3);
  const auto result = Engine::run(graph, program, small_options());
  ASSERT_TRUE(result.is_ok());
  EXPECT_GT(result.value().working_set_bytes, 0U);
  EXPECT_GT(result.value().io.bytes_read, 0U);
  EXPECT_GT(result.value().preprocess_seconds, 0.0);
}

}  // namespace
}  // namespace gpsa
