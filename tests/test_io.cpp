// Storage I/O subsystem (src/io/): backend selection and config, stream
// correctness under every supported backend, engine-level bit-identical
// results across backends and readahead settings, readahead counters,
// and the cluster's file-backed per-node value stores.
//
// The cross-backend equality tests are the contract the CI io-backends
// leg leans on: PageRank/CC/BFS payloads must be *bit-identical* no
// matter which backend streamed the CSR, because backends only change
// how bytes become resident, never which bytes the dispatcher sees.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/pagerank.hpp"
#include "cluster/cluster_engine.hpp"
#include "core/engine.hpp"
#include "graph/csr_file.hpp"
#include "graph/generators.hpp"
#include "io/csr_stream.hpp"
#include "io/io_backend.hpp"
#include "io/readahead.hpp"
#include "platform/file_util.hpp"
#include "storage/value_file.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace gpsa {
namespace {

using testing::diamond_graph;
using testing::expect_payloads_equal;

std::vector<IoBackendKind> supported_backends() {
  std::vector<IoBackendKind> kinds = {IoBackendKind::kMmap,
                                      IoBackendKind::kPread};
  if (IoBackend::supported(IoBackendKind::kUring)) {
    kinds.push_back(IoBackendKind::kUring);
  }
  return kinds;
}

// --- Config resolution -------------------------------------------------------

TEST(IoConfig, BackendNamesRoundTrip) {
  for (const auto kind : {IoBackendKind::kMmap, IoBackendKind::kPread,
                          IoBackendKind::kUring}) {
    const auto parsed = parse_io_backend(io_backend_name(kind));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(parse_io_backend("sendfile").is_ok());
  EXPECT_FALSE(parse_io_backend("").is_ok());
}

TEST(IoConfig, ExplicitOptionsOverrideDefaults) {
  IoOptions opts;
  opts.backend = IoBackendKind::kPread;
  opts.readahead_bytes = 1u << 20;
  opts.drop_behind = false;
  opts.block_bytes = 64u << 10;
  opts.io_threads = 3;
  const auto config = opts.resolve();
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config.value().backend, IoBackendKind::kPread);
  EXPECT_EQ(config.value().readahead_bytes, 1u << 20);
  EXPECT_FALSE(config.value().drop_behind);
  EXPECT_EQ(config.value().block_bytes, 64u << 10);
  EXPECT_EQ(config.value().io_threads, 3u);
}

TEST(IoConfig, RejectsDegenerateValues) {
  IoOptions opts;
  opts.block_bytes = 512;  // below the 4 KiB floor
  EXPECT_FALSE(opts.resolve().is_ok());
  IoOptions threads;
  threads.io_threads = 0;
  EXPECT_FALSE(threads.resolve().is_ok());
}

TEST(IoConfig, UringRequestNeverFailsResolution) {
  // An explicit uring request resolves to uring where the kernel allows
  // it and falls back to pread (with a logged warning) otherwise — it
  // must never fail the run.
  IoOptions opts;
  opts.backend = IoBackendKind::kUring;
  const auto config = opts.resolve();
  ASSERT_TRUE(config.is_ok());
  if (IoBackend::supported(IoBackendKind::kUring)) {
    EXPECT_EQ(config.value().backend, IoBackendKind::kUring);
  } else {
    EXPECT_EQ(config.value().backend, IoBackendKind::kPread);
  }
}

TEST(IoConfig, CacheBlocksCoversWindowPlusPin) {
  IoConfig config;
  config.readahead_bytes = 8u << 20;
  config.block_bytes = 256u << 10;
  EXPECT_EQ(config.cache_blocks(), (8u << 20) / (256u << 10) + 2);
  config.readahead_bytes = 0;  // readahead off still leaves fetch slack
  EXPECT_GE(config.cache_blocks(), 3u);
}

// --- Stream contract, all backends -------------------------------------------

class IoStreamAllBackends : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = ScratchDir::create("io_stream");
    ASSERT_TRUE(dir.is_ok());
    dir_ = std::move(dir).value();
    // ~1.3 MiB of deterministic bytes: several 64 KiB blocks, prime-ish
    // length so the last block is partial.
    payload_.resize((1u << 20) + 300'041);
    Rng rng(7);
    for (auto& b : payload_) {
      b = static_cast<std::byte>(rng.next_u64() & 0xff);
    }
    path_ = dir_.file("stream.bin");
    ASSERT_TRUE(write_file(path_, payload_.data(), payload_.size()).ok());
  }

  std::unique_ptr<IoBackend> make_backend(IoBackendKind kind) {
    IoOptions opts;
    opts.backend = kind;
    opts.block_bytes = 64u << 10;  // small blocks: more cache churn
    opts.readahead_bytes = 256u << 10;
    auto config = opts.resolve();
    EXPECT_TRUE(config.is_ok());
    auto backend = IoBackend::create(config.value());
    EXPECT_TRUE(backend.is_ok());
    return std::move(backend).value();
  }

  void expect_range(IoReadStream& stream, std::uint64_t offset,
                    std::size_t length) {
    const std::byte* got = stream.fetch(offset, length);
    ASSERT_NE(got, nullptr) << stream.status().to_string();
    ASSERT_EQ(std::memcmp(got, payload_.data() + offset, length), 0)
        << "offset " << offset << " length " << length;
  }

  ScratchDir dir_;
  std::string path_;
  std::vector<std::byte> payload_;
};

TEST_F(IoStreamAllBackends, SequentialScanMatchesFile) {
  for (const IoBackendKind kind : supported_backends()) {
    SCOPED_TRACE(io_backend_name(kind));
    auto backend = make_backend(kind);
    auto stream = backend->open_stream(path_);
    ASSERT_TRUE(stream.is_ok());
    ASSERT_EQ(stream.value()->size(), payload_.size());
    // Odd-sized chunks so fetches straddle block boundaries constantly.
    constexpr std::size_t kChunk = 40'961;
    for (std::uint64_t off = 0; off < payload_.size(); off += kChunk) {
      const std::size_t len =
          std::min<std::uint64_t>(kChunk, payload_.size() - off);
      expect_range(*stream.value(), off, len);
      stream.value()->drop_behind(off);
    }
  }
}

TEST_F(IoStreamAllBackends, WillNeedThenFetchHitsWindow) {
  for (const IoBackendKind kind : supported_backends()) {
    SCOPED_TRACE(io_backend_name(kind));
    auto backend = make_backend(kind);
    auto stream = backend->open_stream(path_);
    ASSERT_TRUE(stream.is_ok());
    stream.value()->will_need(0, 256u << 10);
    for (std::uint64_t off = 0; off < (256u << 10); off += (32u << 10)) {
      expect_range(*stream.value(), off, 32u << 10);
    }
    const PrefetchCounters counters = stream.value()->counters();
    EXPECT_GT(counters.window_hits, 0u);
  }
}

TEST_F(IoStreamAllBackends, LargeFetchBypassesCache) {
  // A range wider than the block cache must still come back contiguous
  // and correct (the backends assemble or bypass internally).
  for (const IoBackendKind kind : supported_backends()) {
    SCOPED_TRACE(io_backend_name(kind));
    auto backend = make_backend(kind);
    auto stream = backend->open_stream(path_);
    ASSERT_TRUE(stream.is_ok());
    expect_range(*stream.value(), 12'345, 1u << 20);
    // And the stream still serves ordinary reads afterwards.
    expect_range(*stream.value(), 0, 4096);
    expect_range(*stream.value(), payload_.size() - 17, 17);
  }
}

TEST_F(IoStreamAllBackends, RandomAccessMatchesFile) {
  for (const IoBackendKind kind : supported_backends()) {
    SCOPED_TRACE(io_backend_name(kind));
    auto backend = make_backend(kind);
    auto stream = backend->open_stream(path_);
    ASSERT_TRUE(stream.is_ok());
    Rng rng(kind == IoBackendKind::kMmap ? 1 : 2);
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t off = rng.next_u64() % (payload_.size() - 1);
      const std::size_t len = 1 + rng.next_u64() % std::min<std::uint64_t>(
                                      100'000, payload_.size() - off);
      expect_range(*stream.value(), off, len);
    }
  }
}

TEST_F(IoStreamAllBackends, MissingFileFailsOpen) {
  for (const IoBackendKind kind : supported_backends()) {
    SCOPED_TRACE(io_backend_name(kind));
    auto backend = make_backend(kind);
    EXPECT_FALSE(backend->open_stream(dir_.file("absent.bin")).is_ok());
  }
}

// --- Engine equality across backends -----------------------------------------

EngineOptions engine_options(IoBackendKind backend, std::size_t readahead) {
  EngineOptions eo;
  eo.num_dispatchers = 2;
  eo.num_computers = 2;
  eo.max_supersteps = 5;
  eo.io.backend = backend;
  eo.io.readahead_bytes = readahead;
  // Small blocks so the pread/uring caches actually evict on the test
  // graph instead of holding the whole file.
  eo.io.block_bytes = 16u << 10;
  return eo;
}

class IoEngineEquality : public ::testing::Test {
 protected:
  static EdgeList test_graph() {
    // Big enough that each dispatcher streams multiple blocks.
    return generate_paper_graph(PaperGraph::kGoogle, 0.05, 11);
  }
};

TEST_F(IoEngineEquality, PageRankBitIdenticalAcrossBackends) {
  const EdgeList graph = test_graph();
  const PageRankProgram program(4);
  const auto baseline =
      Engine::run(graph, program, engine_options(IoBackendKind::kMmap, 0));
  ASSERT_TRUE(baseline.is_ok());
  for (const IoBackendKind kind : supported_backends()) {
    SCOPED_TRACE(io_backend_name(kind));
    const auto result =
        Engine::run(graph, program, engine_options(kind, 4u << 20));
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result.value().io_backend, kind);
    EXPECT_EQ(result.value().supersteps, baseline.value().supersteps);
    EXPECT_EQ(result.value().total_messages,
              baseline.value().total_messages);
    // Bit-identical, not approximately equal: the backend must not
    // change a single payload bit.
    expect_payloads_equal(result.value().values, baseline.value().values);
  }
}

TEST_F(IoEngineEquality, BfsAndCcIdenticalAcrossBackends) {
  const EdgeList graph = test_graph();
  const BfsProgram bfs(0);
  const ConnectedComponentsProgram cc;
  for (const Program* program :
       std::initializer_list<const Program*>{&bfs, &cc}) {
    const auto baseline =
        Engine::run(graph, *program, engine_options(IoBackendKind::kMmap, 0));
    ASSERT_TRUE(baseline.is_ok());
    for (const IoBackendKind kind : supported_backends()) {
      SCOPED_TRACE(io_backend_name(kind));
      const auto result =
          Engine::run(graph, *program, engine_options(kind, 4u << 20));
      ASSERT_TRUE(result.is_ok());
      expect_payloads_equal(result.value().values, baseline.value().values);
    }
  }
}

TEST_F(IoEngineEquality, ReadaheadAndDropBehindDoNotChangeResults) {
  const EdgeList graph = test_graph();
  const PageRankProgram program(4);
  const auto baseline =
      Engine::run(graph, program, engine_options(IoBackendKind::kPread, 0));
  ASSERT_TRUE(baseline.is_ok());
  for (const std::size_t readahead : {std::size_t{64} << 10, std::size_t{8} << 20}) {
    for (const bool drop : {false, true}) {
      EngineOptions eo = engine_options(IoBackendKind::kPread, readahead);
      eo.io.drop_behind = drop;
      const auto result = Engine::run(graph, program, eo);
      ASSERT_TRUE(result.is_ok());
      expect_payloads_equal(result.value().values, baseline.value().values);
    }
  }
}

TEST_F(IoEngineEquality, PrefetchCountersReflectReadahead) {
  const EdgeList graph = test_graph();
  const PageRankProgram program(3);
  const auto off =
      Engine::run(graph, program, engine_options(IoBackendKind::kMmap, 0));
  ASSERT_TRUE(off.is_ok());
  EXPECT_EQ(off.value().prefetch.bytes_prefetched, 0u);
  const auto on = Engine::run(graph, program,
                              engine_options(IoBackendKind::kMmap, 4u << 20));
  ASSERT_TRUE(on.is_ok());
  EXPECT_GT(on.value().prefetch.bytes_prefetched, 0u);
  ASSERT_EQ(on.value().dispatcher_busy_seconds.size(), 2u);
  for (const double busy : on.value().dispatcher_busy_seconds) {
    EXPECT_GT(busy, 0.0);
    EXPECT_LE(busy, on.value().elapsed_seconds);
  }
}

TEST_F(IoEngineEquality, ColdStartStillProducesIdenticalResults) {
  const EdgeList graph = test_graph();
  const PageRankProgram program(3);
  const auto warm =
      Engine::run(graph, program, engine_options(IoBackendKind::kMmap, 0));
  ASSERT_TRUE(warm.is_ok());
  for (const IoBackendKind kind : supported_backends()) {
    SCOPED_TRACE(io_backend_name(kind));
    EngineOptions eo = engine_options(kind, 2u << 20);
    eo.io.cold_start = true;
    const auto cold = Engine::run(graph, program, eo);
    ASSERT_TRUE(cold.is_ok());
    expect_payloads_equal(cold.value().values, warm.value().values);
  }
}

// --- Readahead auto re-arm ----------------------------------------------------

TEST_F(IoEngineEquality, ReadaheadAutoDoesNotChangeResults) {
  const EdgeList graph = test_graph();
  const PageRankProgram program(4);
  const auto baseline =
      Engine::run(graph, program, engine_options(IoBackendKind::kPread, 0));
  ASSERT_TRUE(baseline.is_ok());
  for (const IoBackendKind kind : supported_backends()) {
    SCOPED_TRACE(io_backend_name(kind));
    EngineOptions eo = engine_options(kind, 1u << 20);
    eo.io.readahead_auto = true;
    const auto result = Engine::run(graph, program, eo);
    ASSERT_TRUE(result.is_ok());
    expect_payloads_equal(result.value().values, baseline.value().values);
    // The summed hit rate the engine surfaces is a well-formed ratio.
    EXPECT_GE(result.value().readahead_hit_rate, 0.0);
    EXPECT_LE(result.value().readahead_hit_rate, 1.0);
  }
}

TEST(ReadaheadAuto, AllHitSuperstepsShrinkWindowToFloor) {
  // The mmap backend reports every fetch as a window hit (the mapping is
  // always resident), so auto mode must converge the window down to its
  // base/4 floor — and stop there, never collapsing to zero.
  auto dir = ScratchDir::create("readahead_auto");
  ASSERT_TRUE(dir.is_ok());

  // Several stream chunks long, so each superstep below can fetch a chunk
  // the stream has not touched yet (repeat fetches inside one chunk are
  // served without consulting the backend and leave no counter delta).
  constexpr std::uint64_t kEntries = 6 * CsrEntryStream::kChunkEntries;
  const std::string csr_path = dir.value().file("entries.bin");
  {
    std::vector<std::byte> bytes(sizeof(CsrFileHeader) +
                                 kEntries * sizeof(std::int32_t));
    ASSERT_TRUE(write_file(csr_path, bytes.data(), bytes.size()).ok());
  }
  constexpr VertexId kVertices = 1024;
  auto values = ValueFile::create(dir.value().file("values.bin"), kVertices,
                                  "readahead_auto");
  ASSERT_TRUE(values.is_ok());

  IoOptions opts;
  opts.backend = IoBackendKind::kMmap;
  opts.readahead_bytes = 64u << 10;  // base window: 16 Ki entries
  opts.readahead_auto = true;
  auto config = opts.resolve();
  ASSERT_TRUE(config.is_ok());
  auto backend = IoBackend::create(config.value());
  ASSERT_TRUE(backend.is_ok());
  auto stream = backend.value()->open_stream(csr_path);
  ASSERT_TRUE(stream.is_ok());
  CsrEntryStream entries(std::move(stream).value(), kEntries);

  Interval interval;
  interval.end_vertex = kVertices;
  interval.end_entry = kEntries;
  ReadaheadScheduler scheduler(config.value(), &entries, &values.value(),
                               interval);
  const std::uint64_t base = scheduler.window_entries();
  ASSERT_GT(base, 4u);

  scheduler.begin_superstep();  // no counter activity yet: window unchanged
  EXPECT_EQ(scheduler.window_entries(), base);

  std::uint64_t previous = base;
  for (int superstep = 0; superstep < 4; ++superstep) {
    entries.fetch_record(
        static_cast<std::uint64_t>(superstep) * CsrEntryStream::kChunkEntries,
        16);
    scheduler.begin_superstep();
    const std::uint64_t now = scheduler.window_entries();
    EXPECT_LE(now, previous) << "superstep " << superstep;
    EXPECT_GE(now, base / 4) << "superstep " << superstep;
    previous = now;
  }
  // Two halvings from base land on the floor; further all-hit supersteps
  // must hold it there.
  EXPECT_EQ(previous, base / 4);
}

// --- Cluster per-node value stores -------------------------------------------

TEST(IoCluster, FileBackedValueStoresMatchInMemory) {
  const EdgeList graph = generate_paper_graph(PaperGraph::kGoogle, 0.03, 3);
  const PageRankProgram program(4);
  ClusterOptions in_memory;
  in_memory.num_nodes = 3;
  in_memory.max_supersteps = 4;
  const auto baseline = ClusterEngine::run(graph, program, in_memory);
  ASSERT_TRUE(baseline.is_ok());

  for (const IoBackendKind kind : supported_backends()) {
    SCOPED_TRACE(io_backend_name(kind));
    auto dir = ScratchDir::create("io_cluster");
    ASSERT_TRUE(dir.is_ok());
    ClusterOptions on_disk = in_memory;
    on_disk.value_store_dir = dir.value().file("stores");
    on_disk.io.backend = kind;
    const auto result = ClusterEngine::run(graph, program, on_disk);
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result.value().supersteps, baseline.value().supersteps);
    EXPECT_EQ(result.value().total_messages,
              baseline.value().total_messages);
    expect_payloads_equal(result.value().values, baseline.value().values);
    // The per-node files really exist on disk.
    for (unsigned node = 0; node < in_memory.num_nodes; ++node) {
      EXPECT_TRUE(file_exists(on_disk.value_store_dir + "/node" +
                              std::to_string(node) + ".values"))
          << "node " << node;
    }
  }
}

}  // namespace
}  // namespace gpsa
