// Worklist/delta execution mode (DESIGN.md §12).
//
// The contract under test: worklist dispatch (active-bitmap iteration)
// touches exactly the vertex set a sweep would — a bit set in generation
// g is a clear stale flag in column g — so every app's results are
// identical across execution modes, while the per-superstep work
// (vertex checks + streamed entries) shrinks from O(V) to O(active).
// Plus the delta-programming variant (PageRankDeltaProgram): messages
// carry residuals, re-activation is gated on GPSA_DELTA_EPS, and the run
// quiesces on its own instead of exhausting an iteration budget.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/multi_bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/pagerank_delta.hpp"
#include "apps/reference.hpp"
#include "apps/sssp.hpp"
#include "core/engine.hpp"
#include "core/exec_mode.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "platform/file_util.hpp"
#include "storage/value_file.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace gpsa {
namespace {

using testing::expect_float_payloads_near;
using testing::expect_payloads_equal;

EngineOptions matrix_options(ExecMode exec, bool pool,
                             MessageRouting routing) {
  EngineOptions eo;
  eo.num_dispatchers = 2;
  eo.num_computers = 2;
  eo.scheduler_workers = 2;
  eo.message_batch = 8;  // tiny batches exercise the flush paths
  eo.exec = exec;
  eo.message_pool = pool;
  eo.routing = routing;
  return eo;
}

std::vector<Payload> must_run(const EdgeList& graph, const Program& program,
                              const EngineOptions& eo) {
  const auto result = Engine::run(graph, program, eo);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return result.is_ok() ? result.value().values : std::vector<Payload>{};
}

/// Chain with edges in both directions: every vertex has in-edges, so
/// PageRank's fixed point is reached for all of them (no isolated or
/// dangling corner cases in the tolerance comparison).
EdgeList bidirectional_chain(VertexId n) {
  EdgeList g;
  for (VertexId v = 0; v + 1 < n; ++v) {
    g.add_edge(v, v + 1);
    g.add_edge(v + 1, v);
  }
  g.ensure_vertices(n);
  return g;
}

// --- Bit-identical results across exec x pool x routing --------------------

TEST(Worklist, MonotoneAppsBitIdenticalAcrossExecPoolRouting) {
  const EdgeList graph = rmat(8, 2000, 42);
  const Csr csr = Csr::from_edges(graph);
  const BfsProgram bfs(0);
  const ConnectedComponentsProgram cc;
  const SsspProgram sssp(0);
  const MultiSourceReachabilityProgram multi({0, 7, 63});
  const Program* const programs[] = {&bfs, &cc, &sssp, &multi};
  for (const Program* program : programs) {
    const ReferenceResult ref = reference_run(csr, *program);
    for (const bool pool : {false, true}) {
      for (const MessageRouting routing :
           {MessageRouting::kRange, MessageRouting::kMod}) {
        const auto sweep = must_run(
            graph, *program, matrix_options(ExecMode::kSweep, pool, routing));
        const auto worklist = must_run(
            graph, *program,
            matrix_options(ExecMode::kWorklist, pool, routing));
        SCOPED_TRACE(program->name() + " pool=" + (pool ? "on" : "off") +
                     " routing=" +
                     (routing == MessageRouting::kRange ? "range" : "mod"));
        expect_payloads_equal(worklist, sweep);
        expect_payloads_equal(worklist, ref.values);
      }
    }
  }
}

TEST(Worklist, PageRankBitIdenticalUnderDeterministicSchedule) {
  // Float folds depend on arrival order, so bit-identity across exec
  // modes is asserted under a single-actor schedule (one dispatcher, one
  // computer, one worker: ascending dispatch in both modes makes arrival
  // order identical). The multi-actor case is covered within tolerance.
  const EdgeList graph = rmat(7, 1200, 9);
  const PageRankProgram program(8);
  EngineOptions eo;
  eo.num_dispatchers = 1;
  eo.num_computers = 1;
  eo.scheduler_workers = 1;
  eo.exec = ExecMode::kSweep;
  const auto sweep = must_run(graph, program, eo);
  eo.exec = ExecMode::kWorklist;
  const auto worklist = must_run(graph, program, eo);
  expect_payloads_equal(worklist, sweep);

  const auto multi_sweep = must_run(
      graph, program,
      matrix_options(ExecMode::kSweep, true, MessageRouting::kRange));
  const auto multi_worklist = must_run(
      graph, program,
      matrix_options(ExecMode::kWorklist, true, MessageRouting::kRange));
  expect_float_payloads_near(multi_worklist, multi_sweep);
}

// --- The activation/halting regression (single-vertex frontier) ------------

TEST(Worklist, LongChainSingleVertexFrontierRunsToCompletion) {
  // One vertex activates per superstep; the vertex whose only message was
  // applied in the same superstep the manager evaluates convergence must
  // count as active in the next one, all the way down the chain. A
  // dropped activation shows up as premature quiescence (INF tail).
  constexpr VertexId kN = 64;
  const EdgeList graph = chain(kN);
  const auto oracle = oracle_bfs_levels(Csr::from_edges(graph), 0);
  for (const ExecMode exec : {ExecMode::kSweep, ExecMode::kWorklist}) {
    EngineOptions eo = matrix_options(exec, true, MessageRouting::kRange);
    const auto result = Engine::run(graph, BfsProgram(0), eo);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    const RunResult& r = result.value();
    SCOPED_TRACE(exec_mode_name(exec));
    EXPECT_TRUE(r.converged);
    ASSERT_EQ(r.supersteps, kN);
    expect_payloads_equal(r.values, oracle);
    ASSERT_EQ(r.superstep_active_vertices.size(), r.supersteps);
    for (std::uint64_t s = 0; s < r.supersteps; ++s) {
      EXPECT_EQ(r.superstep_active_vertices[s], 1U) << "superstep " << s;
      EXPECT_EQ(r.superstep_messages[s], s + 1 < kN ? 1U : 0U)
          << "superstep " << s;
    }
  }
}

// --- Per-superstep work counters -------------------------------------------

TEST(Worklist, EdgesTouchedShrinkToTheFrontier) {
  const EdgeList graph = chain(64);
  EngineOptions eo = matrix_options(ExecMode::kSweep, true,
                                    MessageRouting::kRange);
  const auto sweep = Engine::run(graph, BfsProgram(0), eo);
  eo.exec = ExecMode::kWorklist;
  const auto worklist = Engine::run(graph, BfsProgram(0), eo);
  ASSERT_TRUE(sweep.is_ok() && worklist.is_ok());
  const RunResult& s = sweep.value();
  const RunResult& w = worklist.value();
  ASSERT_EQ(s.superstep_edges_touched.size(), s.supersteps);
  ASSERT_EQ(w.superstep_edges_touched.size(), w.supersteps);
  ASSERT_EQ(w.supersteps, s.supersteps);
  // The dispatched frontier is identical...
  EXPECT_EQ(w.superstep_active_vertices, s.superstep_active_vertices);
  EXPECT_EQ(w.superstep_messages, s.superstep_messages);
  // ...but the sweep re-checks all 64 vertices every superstep while the
  // worklist checks one. The CI gate asserts the same >= 2x reduction on
  // the BFS tail (scripts/check_worklist_ratio.py).
  const auto sum = [](const std::vector<std::uint64_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  };
  EXPECT_GE(sum(s.superstep_edges_touched),
            2 * sum(w.superstep_edges_touched));
  for (std::uint64_t step = 0; step < w.supersteps; ++step) {
    EXPECT_LT(w.superstep_edges_touched[step],
              s.superstep_edges_touched[step])
        << "superstep " << step;
  }
}

// --- dispatch_inactive x worklist ------------------------------------------

TEST(Worklist, DispatchInactiveRequiresSweep) {
  const EdgeList graph = chain(8);
  EngineOptions eo;
  eo.dispatch_inactive = true;
  eo.exec = ExecMode::kWorklist;
  const auto rejected = Engine::run(graph, BfsProgram(0), eo);
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_NE(rejected.status().to_string().find("sweep"), std::string::npos)
      << rejected.status().to_string();

  eo.exec = ExecMode::kSweep;
  const auto accepted = Engine::run(graph, BfsProgram(0), eo);
  EXPECT_TRUE(accepted.is_ok()) << accepted.status().to_string();
}

// --- GPSA_EXEC resolution ---------------------------------------------------

TEST(Worklist, ExecModeResolution) {
  ASSERT_EQ(::unsetenv("GPSA_EXEC"), 0);
  EXPECT_EQ(resolve_exec_mode(std::nullopt), ExecMode::kWorklist);

  ASSERT_EQ(::setenv("GPSA_EXEC", "sweep", 1), 0);
  EXPECT_EQ(resolve_exec_mode(std::nullopt), ExecMode::kSweep);
  // An explicit option always beats the environment.
  EXPECT_EQ(resolve_exec_mode(ExecMode::kWorklist), ExecMode::kWorklist);

  ASSERT_EQ(::setenv("GPSA_EXEC", "worklist", 1), 0);
  EXPECT_EQ(resolve_exec_mode(std::nullopt), ExecMode::kWorklist);

  // Unknown values warn and fall back to the default.
  ASSERT_EQ(::setenv("GPSA_EXEC", "bogus", 1), 0);
  EXPECT_EQ(resolve_exec_mode(std::nullopt), ExecMode::kWorklist);
  ASSERT_EQ(::unsetenv("GPSA_EXEC"), 0);

  EXPECT_FALSE(parse_exec_mode("BOGUS").is_ok());
  EXPECT_EQ(parse_exec_mode("sweep").value(), ExecMode::kSweep);
  EXPECT_EQ(parse_exec_mode("worklist").value(), ExecMode::kWorklist);
}

// --- Delta PageRank ---------------------------------------------------------

TEST(WorklistDelta, PageRankDeltaConvergesToTheFixedPoint) {
  const EdgeList graph = bidirectional_chain(33);
  const Csr csr = Csr::from_edges(graph);
  const PageRankDeltaProgram program(/*max_iterations=*/100, 0.85F,
                                     /*eps=*/1e-7F);
  const auto result = Engine::run(
      graph, program, matrix_options(ExecMode::kWorklist, true,
                                     MessageRouting::kRange));
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const RunResult& r = result.value();
  // Unlike push PageRank the delta program quiesces on its own: residuals
  // decay below the epsilon and the active set empties.
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.supersteps, program.max_supersteps());
  // Long-run push PageRank reaches the same fixed point.
  const auto oracle = oracle_pagerank(csr, /*iterations=*/200, 0.85F);
  expect_float_payloads_near(r.values, oracle, /*rel_tol=*/1e-3);
  // The reference executor runs the same delta protocol.
  const ReferenceResult ref = reference_run(csr, program);
  EXPECT_TRUE(ref.converged);
  expect_float_payloads_near(r.values, ref.values, /*rel_tol=*/1e-3);
}

TEST(WorklistDelta, DeltaIdenticalAcrossExecModes) {
  const EdgeList graph = bidirectional_chain(17);
  const PageRankDeltaProgram program(100, 0.85F, 1e-7F);
  EngineOptions eo;
  eo.num_dispatchers = 1;
  eo.num_computers = 1;
  eo.scheduler_workers = 1;
  eo.exec = ExecMode::kSweep;
  const auto sweep = must_run(graph, program, eo);
  eo.exec = ExecMode::kWorklist;
  const auto worklist = must_run(graph, program, eo);
  expect_payloads_equal(worklist, sweep);
}

TEST(WorklistDelta, EpsilonResolution) {
  ASSERT_EQ(::unsetenv("GPSA_DELTA_EPS"), 0);
  EXPECT_FLOAT_EQ(resolve_delta_eps(std::nullopt), 1e-7F);
  EXPECT_FLOAT_EQ(resolve_delta_eps(0.5F), 0.5F);
  ASSERT_EQ(::setenv("GPSA_DELTA_EPS", "1e-3", 1), 0);
  EXPECT_FLOAT_EQ(resolve_delta_eps(std::nullopt), 1e-3F);
  EXPECT_FLOAT_EQ(resolve_delta_eps(0.25F), 0.25F);  // option beats env
  ASSERT_EQ(::setenv("GPSA_DELTA_EPS", "not-a-number", 1), 0);
  EXPECT_FLOAT_EQ(resolve_delta_eps(std::nullopt), 1e-7F);
  ASSERT_EQ(::unsetenv("GPSA_DELTA_EPS"), 0);

  // A loose epsilon stops earlier and accepts more error — it must still
  // produce a converged, roughly-right answer.
  const EdgeList graph = bidirectional_chain(33);
  const auto tight = Engine::run(graph, PageRankDeltaProgram(100, 0.85F, 1e-7F),
                                 EngineOptions{});
  const auto loose = Engine::run(graph, PageRankDeltaProgram(100, 0.85F, 1e-4F),
                                 EngineOptions{});
  ASSERT_TRUE(tight.is_ok() && loose.is_ok());
  EXPECT_TRUE(loose.value().converged);
  EXPECT_LE(loose.value().supersteps, tight.value().supersteps);
  expect_float_payloads_near(loose.value().values, tight.value().values,
                             /*rel_tol=*/5e-2);
}

TEST(WorklistDelta, ResumeOfDeltaProgramIsRejected) {
  // The last-sent plane is not checkpointed, so resuming a delta program
  // would re-send full values as residuals and double-count rank.
  const EdgeList graph = bidirectional_chain(17);
  const PageRankDeltaProgram program(100, 0.85F, 1e-7F);
  auto dir = ScratchDir::create("delta_resume");
  ASSERT_TRUE(dir.is_ok());
  EngineOptions eo;
  eo.checkpoint_each_superstep = true;
  eo.work_dir = dir.value().path();
  eo.max_supersteps = 2;
  ASSERT_TRUE(Engine::run(graph, program, eo).is_ok());
  eo.max_supersteps = 0;
  const auto resumed = Engine::run_from_csr(dir.value().file("graph.csr"),
                                            program, eo, /*resume=*/true);
  ASSERT_FALSE(resumed.is_ok());
  EXPECT_NE(resumed.status().to_string().find("delta"), std::string::npos)
      << resumed.status().to_string();
}

// --- Crash recovery under worklist mode ------------------------------------

/// Overwrites the crashed superstep's update column with garbage and
/// randomly consumes dispatch flags (same shape as test_recovery.cpp).
void tear_value_file(const std::string& path, std::uint64_t seed) {
  auto file = ValueFile::open(path);
  ASSERT_TRUE(file.is_ok()) << file.status().to_string();
  ValueFile& vf = file.value();
  const std::uint64_t resume = vf.completed_supersteps();
  const unsigned update_col = ValueFile::update_column(resume);
  const unsigned dispatch_col = ValueFile::dispatch_column(resume);
  Rng rng(seed);
  for (VertexId v = 0; v < vf.num_vertices(); ++v) {
    if (rng.next_bool(0.7)) {
      vf.store(v, update_col,
               make_slot(static_cast<Payload>(rng.next_below(kPayloadMask)),
                         rng.next_bool(0.5)));
    }
    if (rng.next_bool(0.4)) {
      vf.consume(v, dispatch_col);
    }
  }
}

TEST(WorklistRecovery, ResumeRebuildsTheBitmapFromRecoveredFlags) {
  // The bitmap dies with the crashed process; on resume the engine must
  // reconstruct the dispatch generation from the recovered stale flags,
  // or the first post-resume superstep dispatches nothing and the run
  // "converges" with an INF tail.
  const EdgeList graph = rmat(8, 2000, 123);
  const BfsProgram program(0);
  auto dir = ScratchDir::create("worklist_crash");
  ASSERT_TRUE(dir.is_ok());

  EngineOptions eo = matrix_options(ExecMode::kWorklist, true,
                                    MessageRouting::kRange);
  eo.checkpoint_each_superstep = true;
  eo.work_dir = dir.value().path();

  EngineOptions partial = eo;
  partial.max_supersteps = 2;
  ASSERT_TRUE(Engine::run(graph, program, partial).is_ok());
  tear_value_file(dir.value().file("bfs.values"), /*seed=*/77);

  const auto resumed = Engine::run_from_csr(dir.value().file("graph.csr"),
                                            program, eo, /*resume=*/true);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_TRUE(resumed.value().converged);
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(resumed.value().values, ref.values);
}

}  // namespace
}  // namespace gpsa
