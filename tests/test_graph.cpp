// Unit tests for the graph substrate: edge-list IO, CSR construction and
// transpose, the paper's on-disk CSR format (Fig. 4 variants), generators,
// and interval partitioning.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <numeric>

#include "graph/csr.hpp"
#include "graph/csr_file.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "platform/file_util.hpp"
#include "test_support.hpp"

namespace gpsa {
namespace {

using testing::diamond_graph;

// --- EdgeList ----------------------------------------------------------------

TEST(EdgeList, TracksVertexBound) {
  EdgeList g;
  g.add_edge(3, 9);
  EXPECT_EQ(g.num_vertices(), 10U);
  g.ensure_vertices(4);  // never lowers
  EXPECT_EQ(g.num_vertices(), 10U);
  g.ensure_vertices(20);
  EXPECT_EQ(g.num_vertices(), 20U);
}

TEST(EdgeList, CanonicalizeSortsDedupsAndDropsLoops) {
  EdgeList g;
  g.add_edge(2, 1);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  g.add_edge(1, 1);
  g.canonicalize();
  ASSERT_EQ(g.num_edges(), 2U);
  EXPECT_EQ(g.edges()[0], (Edge{0, 1}));
  EXPECT_EQ(g.edges()[1], (Edge{2, 1}));
}

TEST(EdgeList, TextRoundTripWithComments) {
  auto dir = ScratchDir::create("el");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("g.txt");
  const EdgeList g = diamond_graph();
  ASSERT_TRUE(g.write_text(path).is_ok());
  const auto back = EdgeList::read_text(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().num_edges(), g.num_edges());
  EXPECT_EQ(back.value().edges(), g.edges());
}

TEST(EdgeList, TextParserRejectsGarbage) {
  auto dir = ScratchDir::create("elbad");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("bad.txt");
  ASSERT_TRUE(write_file(path, "1 two\n", 6).is_ok());
  const auto r = EdgeList::read_text(path);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);
}

TEST(EdgeList, BinaryRoundTrip) {
  auto dir = ScratchDir::create("elbin");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("g.bin");
  const EdgeList g = rmat(7, 500, 3);
  ASSERT_TRUE(g.write_binary(path).is_ok());
  const auto back = EdgeList::read_binary(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().num_vertices(), g.num_vertices());
  EXPECT_EQ(back.value().edges(), g.edges());
}

TEST(EdgeList, BinaryRejectsBadMagic) {
  auto dir = ScratchDir::create("elmag");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("junk.bin");
  const char junk[32] = {1, 2, 3};
  ASSERT_TRUE(write_file(path, junk, sizeof(junk)).is_ok());
  EXPECT_FALSE(EdgeList::read_binary(path).is_ok());
}

TEST(EdgeList, TextParserRejectsOutOfRangeIds) {
  // 0xffffffff would wrap add_edge's num_vertices computation to 0, and
  // anything >= 2^31 - 1 is unrepresentable in the int32 CSR entry format
  // (fuzz_edge_list regression).
  auto dir = ScratchDir::create("elrange");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("range.txt");
  for (const char* body : {"4294967295 1\n", "1 4294967295\n",
                           "2147483647 1\n", "0 2147483647\n"}) {
    ASSERT_TRUE(write_file(path, body, std::strlen(body)).is_ok());
    const auto r = EdgeList::read_text(path);
    EXPECT_FALSE(r.is_ok()) << body;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruptData) << body;
  }
  // The largest representable id still parses.
  const char* max_ok = "2147483646 0\n";
  ASSERT_TRUE(write_file(path, max_ok, std::strlen(max_ok)).is_ok());
  const auto ok = EdgeList::read_text(path);
  ASSERT_TRUE(ok.is_ok()) << ok.status().to_string();
  EXPECT_EQ(ok.value().num_vertices(), 2147483647U);
}

TEST(EdgeList, BinaryRejectsLyingHeader) {
  auto dir = ScratchDir::create("ellie");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("g.bin");
  EdgeList g;
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  ASSERT_TRUE(g.write_binary(path).is_ok());
  auto bytes = read_file(path);
  ASSERT_TRUE(bytes.is_ok());

  // Inflate the edge count: without the file-size check this drives a
  // huge resize before any read fails (fuzz_edge_list regression).
  auto inflated = bytes.value();
  const std::uint64_t huge = std::uint64_t{1} << 40;
  std::memcpy(inflated.data() + 8, &huge, sizeof(huge));
  ASSERT_TRUE(write_file(path, inflated.data(), inflated.size()).is_ok());
  auto r = EdgeList::read_binary(path);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);

  // Shrink the vertex count below the edge endpoints: accepted, this
  // builds CSRs whose adjacency targets exceed num_vertices.
  auto shrunk = bytes.value();
  const std::uint32_t zero_vertices = 0;
  std::memcpy(shrunk.data() + 4, &zero_vertices, sizeof(zero_vertices));
  ASSERT_TRUE(write_file(path, shrunk.data(), shrunk.size()).is_ok());
  r = EdgeList::read_binary(path);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);
}

// --- Csr ---------------------------------------------------------------------

TEST(Csr, BuildsAdjacency) {
  const Csr csr = Csr::from_edges(diamond_graph());
  EXPECT_EQ(csr.num_vertices(), 6U);
  EXPECT_EQ(csr.num_edges(), 5U);
  EXPECT_EQ(csr.out_degree(0), 2U);
  EXPECT_EQ(csr.out_degree(5), 0U);
  const auto n0 = csr.neighbors(0);
  ASSERT_EQ(n0.size(), 2U);
  EXPECT_EQ(n0[0], 1U);
  EXPECT_EQ(n0[1], 2U);
}

TEST(Csr, TransposeReversesEdges) {
  const Csr csr = Csr::from_edges(diamond_graph());
  const Csr t = csr.transpose();
  EXPECT_EQ(t.num_edges(), csr.num_edges());
  EXPECT_EQ(t.out_degree(3), 2U);  // in-edges of 3: from 1 and 2
  EXPECT_EQ(t.out_degree(0), 0U);
  // Double transpose is the identity on the edge multiset.
  const Csr tt = t.transpose();
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    std::vector<VertexId> a(csr.neighbors(v).begin(), csr.neighbors(v).end());
    std::vector<VertexId> b(tt.neighbors(v).begin(), tt.neighbors(v).end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << "vertex " << v;
  }
}

// --- CsrFile (paper Fig. 4) --------------------------------------------------

class CsrFileTest : public ::testing::TestWithParam<bool> {};

TEST_P(CsrFileTest, RoundTripPreservesRecords) {
  const bool with_degree = GetParam();
  auto dir = ScratchDir::create("csrf");
  ASSERT_TRUE(dir.is_ok());
  const std::string base = dir.value().file("g.csr");
  const EdgeList g = rmat(8, 2000, 17);
  const Csr csr = Csr::from_edges(g);
  ASSERT_TRUE(write_csr_file(csr, base, with_degree).is_ok());
  const auto reader = CsrFileReader::open(base);
  ASSERT_TRUE(reader.is_ok()) << reader.status().to_string();
  const CsrFileReader& r = reader.value();
  EXPECT_EQ(r.num_vertices(), csr.num_vertices());
  EXPECT_EQ(r.num_edges(), csr.num_edges());
  EXPECT_EQ(r.has_degree(), with_degree);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    const auto record = r.record(v);
    ASSERT_EQ(record.out_degree, csr.out_degree(v)) << "vertex " << v;
    const auto expected = csr.neighbors(v);
    ASSERT_EQ(record.targets.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(static_cast<VertexId>(record.targets[i]), expected[i]);
    }
  }
}

TEST_P(CsrFileTest, SentinelsTerminateEveryRecord) {
  const bool with_degree = GetParam();
  auto dir = ScratchDir::create("csrs");
  ASSERT_TRUE(dir.is_ok());
  const std::string base = dir.value().file("g.csr");
  const Csr csr = Csr::from_edges(diamond_graph());
  ASSERT_TRUE(write_csr_file(csr, base, with_degree).is_ok());
  const auto reader = CsrFileReader::open(base);
  ASSERT_TRUE(reader.is_ok());
  const auto offsets = reader.value().record_offsets();
  const auto entries = reader.value().entries();
  ASSERT_EQ(offsets.size(), csr.num_vertices() + 1U);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    EXPECT_EQ(entries[offsets[v + 1] - 1], kCsrEndOfList) << "vertex " << v;
  }
  EXPECT_EQ(offsets.back(), entries.size());
}

INSTANTIATE_TEST_SUITE_P(DegreeVariants, CsrFileTest, ::testing::Bool(),
                         [](const auto& param_info) {
                           return param_info.param ? "WithDegree" : "NoDegree";
                         });

TEST(CsrFile, OpenRejectsCorruptHeader) {
  auto dir = ScratchDir::create("csrbad");
  ASSERT_TRUE(dir.is_ok());
  const std::string base = dir.value().file("bad.csr");
  std::vector<char> junk(64, 0x5A);
  ASSERT_TRUE(write_file(base, junk.data(), junk.size()).is_ok());
  ASSERT_TRUE(write_file(base + ".idx", junk.data(), 8).is_ok());
  const auto r = CsrFileReader::open(base);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);
}

TEST(CsrFile, EmptyVertexRecordsAreWellFormed) {
  // star(4): vertex 0 -> {1,2,3} and back; add an isolated vertex 4.
  EdgeList g = star(4);
  g.ensure_vertices(5);
  auto dir = ScratchDir::create("csriso");
  ASSERT_TRUE(dir.is_ok());
  const std::string base = dir.value().file("g.csr");
  ASSERT_TRUE(write_csr_file(Csr::from_edges(g), base, true).is_ok());
  const auto reader = CsrFileReader::open(base);
  ASSERT_TRUE(reader.is_ok());
  const auto record = reader.value().record(4);
  EXPECT_EQ(record.out_degree, 0U);
  EXPECT_TRUE(record.targets.empty());
}

// --- Generators --------------------------------------------------------------

TEST(Generators, ChainGridStarCounts) {
  EXPECT_EQ(chain(10).num_edges(), 9U);
  EXPECT_EQ(grid(3, 4).num_edges(), 3U * 3 + 2 * 4);  // rights + downs
  EXPECT_EQ(star(5).num_edges(), 8U);
  EXPECT_EQ(complete(4).num_edges(), 12U);
  EXPECT_EQ(binary_tree(7).num_edges(), 6U);
}

TEST(Generators, ErdosRenyiRespectsBounds) {
  const EdgeList g = erdos_renyi(100, 500, 1);
  EXPECT_EQ(g.num_vertices(), 100U);
  EXPECT_EQ(g.num_edges(), 500U);
  for (const Edge& e : g.edges()) {
    ASSERT_LT(e.src, 100U);
    ASSERT_LT(e.dst, 100U);
    ASSERT_NE(e.src, e.dst);
  }
}

TEST(Generators, RmatDeterministicPerSeed) {
  const EdgeList a = rmat(8, 1000, 5);
  const EdgeList b = rmat(8, 1000, 5);
  const EdgeList c = rmat(8, 1000, 6);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_NE(a.edges(), c.edges());
}

TEST(Generators, RmatIsSkewed) {
  // Power-law-ish: the top 1% of vertices by out-degree should own a
  // disproportionate share of edges (far above the uniform 1%).
  const EdgeList g = rmat(12, 40'000, 9);
  const Csr csr = Csr::from_edges(g);
  std::vector<EdgeCount> degrees;
  degrees.reserve(csr.num_vertices());
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    degrees.push_back(csr.out_degree(v));
  }
  std::sort(degrees.rbegin(), degrees.rend());
  const std::size_t top = degrees.size() / 100;
  const EdgeCount top_sum =
      std::accumulate(degrees.begin(), degrees.begin() + top, EdgeCount{0});
  EXPECT_GT(static_cast<double>(top_sum) / static_cast<double>(g.num_edges()),
            0.05);
}

TEST(Generators, PaperDatasetSpecsMatchTableOne) {
  const DatasetSpec google = paper_dataset_spec(PaperGraph::kGoogle);
  EXPECT_EQ(google.paper_vertices, 875'713U);
  EXPECT_EQ(google.paper_edges, 5'105'039U);
  const DatasetSpec twitter = paper_dataset_spec(PaperGraph::kTwitter2010);
  EXPECT_EQ(twitter.paper_vertices, 41'652'230U);
  EXPECT_EQ(twitter.paper_edges, 1'468'365'182U);
  EXPECT_EQ(all_paper_graphs().size(), 4U);
}

TEST(Generators, PaperStandInScales) {
  const EdgeList small = generate_paper_graph(PaperGraph::kGoogle, 0.05, 1);
  const DatasetSpec spec = paper_dataset_spec(PaperGraph::kGoogle);
  EXPECT_NEAR(static_cast<double>(small.num_edges()),
              0.05 * static_cast<double>(spec.stand_in_edges),
              0.01 * static_cast<double>(spec.stand_in_edges));
}

// --- Partitioning ------------------------------------------------------------

TEST(Partition, UniformCoversAllVertices) {
  const std::vector<EdgeCount> degrees(100, 3);
  const auto intervals = make_intervals_from_degrees(
      degrees, 7, PartitionStrategy::kUniformVertices);
  ASSERT_FALSE(intervals.empty());
  VertexId expected_begin = 0;
  for (const Interval& iv : intervals) {
    EXPECT_EQ(iv.begin_vertex, expected_begin);
    expected_begin = iv.end_vertex;
  }
  EXPECT_EQ(expected_begin, 100U);
}

TEST(Partition, BalancedEdgesEqualizesSkew) {
  // Vertex 0 has 1000 edges, the rest have 1 each: balanced-edge cuts must
  // isolate the hub, uniform cuts must not.
  std::vector<EdgeCount> degrees(101, 1);
  degrees[0] = 1000;
  const auto balanced = make_intervals_from_degrees(
      degrees, 4, PartitionStrategy::kBalancedEdges);
  EXPECT_EQ(balanced.front().vertex_count(), 1U);  // hub alone
  const auto uniform = make_intervals_from_degrees(
      degrees, 4, PartitionStrategy::kUniformVertices);
  EXPECT_GT(uniform.front().vertex_count(), 1U);
  // Coverage invariant for both.
  for (const auto& intervals : {balanced, uniform}) {
    VertexId covered = 0;
    EdgeCount edges = 0;
    for (const Interval& iv : intervals) {
      EXPECT_EQ(iv.begin_vertex, covered);
      covered = iv.end_vertex;
      edges += iv.edge_count;
    }
    EXPECT_EQ(covered, 101U);
    EXPECT_EQ(edges, 1100U);
  }
}

TEST(Partition, BalancedEdgesStarGraphLeavesNoDispatcherIdle) {
  // Regression: with fixed prefix targets (total * p / parts) a star hub
  // overshoots several cumulative cuts at once, collapsing them onto the
  // same vertex — empty intervals, idle dispatchers. Remaining-edge
  // rebalancing must yield exactly `parts` non-empty intervals whenever
  // parts <= |V|.
  const EdgeList g = star(64);
  const Csr csr = Csr::from_edges(g);
  std::vector<EdgeCount> degrees(csr.num_vertices());
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    degrees[v] = csr.out_degree(v);
  }
  for (const unsigned parts : {2U, 3U, 4U, 8U, 16U, 64U}) {
    const auto intervals = make_intervals_from_degrees(
        degrees, parts, PartitionStrategy::kBalancedEdges);
    ASSERT_EQ(intervals.size(), parts) << "parts=" << parts;
    VertexId covered = 0;
    EdgeCount edges = 0;
    for (const Interval& iv : intervals) {
      EXPECT_EQ(iv.begin_vertex, covered) << "parts=" << parts;
      EXPECT_GT(iv.vertex_count(), 0U) << "parts=" << parts;
      covered = iv.end_vertex;
      edges += iv.edge_count;
    }
    EXPECT_EQ(covered, csr.num_vertices()) << "parts=" << parts;
    EXPECT_EQ(edges, csr.num_edges()) << "parts=" << parts;
  }
}

TEST(Partition, BalancedEdgesSkewedRmatHasNoEmptyIntervals) {
  // Same invariant on a power-law degree distribution (the shape the
  // dispatchers actually see) across a sweep of part counts.
  const EdgeList g = rmat(9, 8'000, 41);
  const Csr csr = Csr::from_edges(g);
  std::vector<EdgeCount> degrees(csr.num_vertices());
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    degrees[v] = csr.out_degree(v);
  }
  for (unsigned parts = 1; parts <= 32; ++parts) {
    const auto intervals = make_intervals_from_degrees(
        degrees, parts, PartitionStrategy::kBalancedEdges);
    ASSERT_EQ(intervals.size(), parts) << "parts=" << parts;
    for (const Interval& iv : intervals) {
      EXPECT_GT(iv.vertex_count(), 0U) << "parts=" << parts;
    }
  }
}

TEST(Partition, MoreBucketsThanVerticesShrinks) {
  const std::vector<EdgeCount> degrees(3, 2);
  const auto intervals = make_intervals_from_degrees(
      degrees, 10, PartitionStrategy::kUniformVertices);
  EXPECT_LE(intervals.size(), 3U);
  VertexId covered = 0;
  for (const Interval& iv : intervals) {
    covered += iv.vertex_count();
  }
  EXPECT_EQ(covered, 3U);
}

TEST(Partition, IntervalEntryOffsetsMatchCsrFile) {
  auto dir = ScratchDir::create("part");
  ASSERT_TRUE(dir.is_ok());
  const std::string base = dir.value().file("g.csr");
  const EdgeList g = rmat(8, 1500, 23);
  ASSERT_TRUE(write_csr_file(Csr::from_edges(g), base, true).is_ok());
  const auto reader = CsrFileReader::open(base);
  ASSERT_TRUE(reader.is_ok());
  const auto intervals =
      make_intervals(reader.value(), 4, PartitionStrategy::kBalancedEdges);
  const auto offsets = reader.value().record_offsets();
  for (const Interval& iv : intervals) {
    EXPECT_EQ(iv.begin_entry, offsets[iv.begin_vertex]);
    EXPECT_EQ(iv.end_entry, offsets[iv.end_vertex]);
  }
}

}  // namespace
}  // namespace gpsa
