// Tests for the two baseline engines: shard layout invariants (PSW),
// streaming behaviour (X-Stream), and agreement with the sequential
// reference on all apps.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/pagerank.hpp"
#include "apps/reference.hpp"
#include "apps/sssp.hpp"
#include "baselines/graphchi/psw_engine.hpp"
#include "baselines/graphchi/shard.hpp"
#include "baselines/xstream/xstream_engine.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "platform/file_util.hpp"
#include "test_support.hpp"

namespace gpsa {
namespace {

using testing::diamond_graph;
using testing::expect_float_payloads_near;
using testing::expect_payloads_equal;

BaselineOptions small_options(unsigned partitions = 3) {
  BaselineOptions bo;
  bo.threads = 2;
  bo.partitions = partitions;
  return bo;
}

// --- ShardSet ----------------------------------------------------------------

TEST(ShardSet, PartitionsEdgesByDestination) {
  auto dir = ScratchDir::create("shards");
  ASSERT_TRUE(dir.is_ok());
  const EdgeList g = rmat(7, 600, 3);
  const auto shards = ShardSet::build(g, 4, dir.value().path());
  ASSERT_TRUE(shards.is_ok()) << shards.status().to_string();
  const ShardSet& s = shards.value();
  EdgeCount total = 0;
  for (unsigned q = 0; q < s.num_partitions(); ++q) {
    for (const ShardEdge& e : s.shard(q)) {
      ASSERT_GE(e.dst, s.interval_begin(q));
      ASSERT_LT(e.dst, s.interval_end(q));
      ASSERT_EQ(e.stamp, ShardEdge::kNeverStamped);
      ++total;
    }
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(ShardSet, ShardsAreSortedBySourceWithCorrectWindows) {
  auto dir = ScratchDir::create("shardw");
  ASSERT_TRUE(dir.is_ok());
  const EdgeList g = rmat(7, 800, 5);
  const auto shards = ShardSet::build(g, 5, dir.value().path());
  ASSERT_TRUE(shards.is_ok());
  const ShardSet& s = shards.value();
  for (unsigned q = 0; q < s.num_partitions(); ++q) {
    const auto shard = s.shard(q);
    for (std::size_t i = 1; i < shard.size(); ++i) {
      ASSERT_LE(shard[i - 1].src, shard[i].src);
    }
    for (unsigned p = 0; p < s.num_partitions(); ++p) {
      for (std::uint64_t i = s.window_begin(q, p); i < s.window_end(q, p);
           ++i) {
        ASSERT_GE(shard[i].src, s.interval_begin(p));
        ASSERT_LT(shard[i].src, s.interval_end(p));
      }
    }
  }
}

TEST(ShardSet, IntervalOfIsConsistent) {
  auto dir = ScratchDir::create("shardi");
  ASSERT_TRUE(dir.is_ok());
  const auto shards = ShardSet::build(chain(100), 7, dir.value().path());
  ASSERT_TRUE(shards.is_ok());
  const ShardSet& s = shards.value();
  for (VertexId v = 0; v < 100; ++v) {
    const unsigned p = s.interval_of(v);
    ASSERT_GE(v, s.interval_begin(p));
    ASSERT_LT(v, s.interval_end(p));
  }
}

// --- PSW engine --------------------------------------------------------------

TEST(PswEngine, BfsMatchesReference) {
  const EdgeList g = rmat(9, 4000, 7);
  const BfsProgram program(0);
  const auto r = PswEngine::run(g, program, small_options());
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const ReferenceResult ref = reference_run(Csr::from_edges(g), program);
  expect_payloads_equal(r.value().values, ref.values);
  EXPECT_EQ(r.value().total_messages, ref.total_messages);
  EXPECT_EQ(r.value().supersteps, ref.supersteps);
  EXPECT_TRUE(r.value().converged);
}

TEST(PswEngine, CcMatchesReference) {
  const EdgeList g = erdos_renyi(300, 500, 9);
  const ConnectedComponentsProgram program;
  const auto r = PswEngine::run(g, program, small_options(4));
  ASSERT_TRUE(r.is_ok());
  const ReferenceResult ref = reference_run(Csr::from_edges(g), program);
  expect_payloads_equal(r.value().values, ref.values);
}

TEST(PswEngine, PageRankMatchesReference) {
  const EdgeList g = rmat(8, 2500, 13);
  const PageRankProgram program(5);
  const auto r = PswEngine::run(g, program, small_options());
  ASSERT_TRUE(r.is_ok());
  const ReferenceResult ref = reference_run(Csr::from_edges(g), program);
  expect_float_payloads_near(r.value().values, ref.values);
}

TEST(PswEngine, SsspMatchesOracle) {
  const EdgeList g = rmat(8, 2000, 15);
  const SsspProgram program(0);
  const auto r = PswEngine::run(g, program, small_options());
  ASSERT_TRUE(r.is_ok());
  expect_payloads_equal(r.value().values,
                        oracle_sssp(Csr::from_edges(g), 0));
}

TEST(PswEngine, SinglePartitionSingleThread) {
  const EdgeList g = diamond_graph();
  BaselineOptions bo;
  bo.threads = 1;
  bo.partitions = 1;
  const auto r = PswEngine::run(g, BfsProgram(0), bo);
  ASSERT_TRUE(r.is_ok());
  expect_payloads_equal(r.value().values,
                        oracle_bfs_levels(Csr::from_edges(g), 0));
}

TEST(PswEngine, RespectsSuperstepBudget) {
  BaselineOptions bo = small_options();
  bo.max_supersteps = 2;
  const auto r = PswEngine::run(chain(32), BfsProgram(0), bo);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().supersteps, 2U);
  EXPECT_FALSE(r.value().converged);
}

// --- X-Stream engine ---------------------------------------------------------

TEST(XStreamEngine, BfsMatchesReference) {
  const EdgeList g = rmat(9, 4000, 7);
  const BfsProgram program(0);
  const auto r = XStreamEngine::run(g, program, small_options());
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const ReferenceResult ref = reference_run(Csr::from_edges(g), program);
  expect_payloads_equal(r.value().values, ref.values);
  EXPECT_EQ(r.value().total_messages, ref.total_messages);
}

TEST(XStreamEngine, CcMatchesReference) {
  const EdgeList g = erdos_renyi(256, 700, 19);
  const ConnectedComponentsProgram program;
  const auto r = XStreamEngine::run(g, program, small_options(4));
  ASSERT_TRUE(r.is_ok());
  const ReferenceResult ref = reference_run(Csr::from_edges(g), program);
  expect_payloads_equal(r.value().values, ref.values);
}

TEST(XStreamEngine, PageRankMatchesReference) {
  const EdgeList g = rmat(8, 2500, 13);
  const PageRankProgram program(5);
  const auto r = XStreamEngine::run(g, program, small_options());
  ASSERT_TRUE(r.is_ok());
  const ReferenceResult ref = reference_run(Csr::from_edges(g), program);
  expect_float_payloads_near(r.value().values, ref.values);
}

TEST(XStreamEngine, StreamsEveryEdgeEverySuperstep) {
  // The defining X-Stream property the paper's BFS/CC comparisons hinge
  // on: edges_streamed == |E| * supersteps regardless of frontier size.
  const EdgeList g = chain(16);
  const auto r = XStreamEngine::run(g, BfsProgram(0), small_options(2));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().edges_streamed,
            g.num_edges() * r.value().supersteps);
  // BFS on a 16-chain needs 16 supersteps; X-Stream therefore streams
  // 15 * 16 edges while only ~15 messages ever mattered.
  EXPECT_GT(r.value().edges_streamed, r.value().total_messages * 5);
}

TEST(XStreamEngine, SinglePartition) {
  const EdgeList g = diamond_graph();
  BaselineOptions bo;
  bo.threads = 1;
  bo.partitions = 1;
  const auto r = XStreamEngine::run(g, BfsProgram(0), bo);
  ASSERT_TRUE(r.is_ok());
  expect_payloads_equal(r.value().values,
                        oracle_bfs_levels(Csr::from_edges(g), 0));
}

TEST(XStreamEngine, RespectsSuperstepBudget) {
  BaselineOptions bo = small_options();
  bo.max_supersteps = 3;
  const auto r = XStreamEngine::run(chain(32), BfsProgram(0), bo);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().supersteps, 3U);
}

TEST(XStreamEngine, InMemoryModeMatchesOutOfCore) {
  const EdgeList g = rmat(8, 3000, 61);
  const PageRankProgram program(5);
  BaselineOptions ooc = small_options();
  BaselineOptions mem = small_options();
  mem.xstream_in_memory = true;
  const auto disk = XStreamEngine::run(g, program, ooc);
  const auto ram = XStreamEngine::run(g, program, mem);
  ASSERT_TRUE(disk.is_ok());
  ASSERT_TRUE(ram.is_ok());
  EXPECT_EQ(ram.value().total_messages, disk.value().total_messages);
  EXPECT_EQ(ram.value().edges_streamed, disk.value().edges_streamed);
  expect_float_payloads_near(ram.value().values, disk.value().values, 1e-6);
}

TEST(XStreamEngine, InMemoryBfsExact) {
  const EdgeList g = rmat(8, 2000, 63);
  BaselineOptions mem = small_options();
  mem.xstream_in_memory = true;
  const auto r = XStreamEngine::run(g, BfsProgram(0), mem);
  ASSERT_TRUE(r.is_ok());
  expect_payloads_equal(r.value().values,
                        oracle_bfs_levels(Csr::from_edges(g), 0));
}

TEST(Baselines, RejectEmptyGraph) {
  const EdgeList empty;
  EXPECT_FALSE(PswEngine::run(empty, BfsProgram(0), {}).is_ok());
  EXPECT_FALSE(XStreamEngine::run(empty, BfsProgram(0), {}).is_ok());
}

}  // namespace
}  // namespace gpsa
