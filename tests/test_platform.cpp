// Unit tests for the platform substrate: mmap wrapper, file utilities,
// and CPU accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "platform/cpu_stats.hpp"
#include "platform/file_util.hpp"
#include "platform/mmap_file.hpp"

namespace gpsa {
namespace {

TEST(ScratchDir, CreatesAndRemoves) {
  std::string path;
  {
    auto dir = ScratchDir::create("test");
    ASSERT_TRUE(dir.is_ok());
    path = dir.value().path();
    EXPECT_TRUE(file_exists(path));
    ASSERT_TRUE(write_file(dir.value().file("a.txt"), "hi", 2).is_ok());
  }
  EXPECT_FALSE(file_exists(path));
}

TEST(ScratchDir, KeepDisownsDirectory) {
  std::string path;
  {
    auto dir = ScratchDir::create("keep");
    ASSERT_TRUE(dir.is_ok());
    path = dir.value().path();
    dir.value().keep();
  }
  EXPECT_TRUE(file_exists(path));
  ASSERT_TRUE(remove_tree(path).is_ok());
}

TEST(FileUtil, WriteReadRoundTrip) {
  auto dir = ScratchDir::create("io");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("data.bin");
  const std::string payload("hello\0gpsa binary", 17);
  ASSERT_TRUE(write_file(path, payload.data(), payload.size()).is_ok());
  const auto read = read_file(path);
  ASSERT_TRUE(read.is_ok());
  ASSERT_EQ(read.value().size(), payload.size());
  EXPECT_EQ(std::memcmp(read.value().data(), payload.data(), payload.size()),
            0);
  const auto size = file_size(path);
  ASSERT_TRUE(size.is_ok());
  EXPECT_EQ(size.value(), payload.size());
}

TEST(FileUtil, ReadMissingFileIsNotFound) {
  const auto r = read_file("/nonexistent/gpsa/file");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(FileUtil, RemoveTreeRefusesRoot) {
  EXPECT_FALSE(remove_tree("/").is_ok());
  EXPECT_FALSE(remove_tree("").is_ok());
}

TEST(MmapFile, CreateWriteReopenRead) {
  auto dir = ScratchDir::create("mmap");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("map.bin");
  {
    auto file = MmapFile::create(path, 4096);
    ASSERT_TRUE(file.is_ok()) << file.status().to_string();
    auto span = file.value().as_span<std::uint32_t>();
    ASSERT_EQ(span.size(), 1024U);
    for (std::uint32_t i = 0; i < span.size(); ++i) {
      span[i] = i * 3;
    }
    ASSERT_TRUE(file.value().sync().is_ok());
  }
  {
    auto file = MmapFile::open(path, MmapFile::Mode::kReadOnly);
    ASSERT_TRUE(file.is_ok());
    EXPECT_EQ(file.value().size(), 4096U);
    auto span = file.value().as_span<const std::uint32_t>();
    for (std::uint32_t i = 0; i < span.size(); ++i) {
      ASSERT_EQ(span[i], i * 3);
    }
  }
}

TEST(MmapFile, CreateZeroFillsContents) {
  auto dir = ScratchDir::create("mmap0");
  ASSERT_TRUE(dir.is_ok());
  auto file = MmapFile::create(dir.value().file("z.bin"), 512);
  ASSERT_TRUE(file.is_ok());
  for (std::byte b : file.value().as_span<const std::byte>()) {
    ASSERT_EQ(b, std::byte{0});
  }
}

TEST(MmapFile, OpenMissingFails) {
  const auto r = MmapFile::open("/nonexistent/x.bin",
                                MmapFile::Mode::kReadOnly);
  EXPECT_FALSE(r.is_ok());
}

TEST(MmapFile, RejectsZeroSizeCreate) {
  auto dir = ScratchDir::create("mmapz");
  ASSERT_TRUE(dir.is_ok());
  const auto r = MmapFile::create(dir.value().file("zero.bin"), 0);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(MmapFile, MoveTransfersOwnership) {
  auto dir = ScratchDir::create("mmapmv");
  ASSERT_TRUE(dir.is_ok());
  auto file = MmapFile::create(dir.value().file("mv.bin"), 64);
  ASSERT_TRUE(file.is_ok());
  MmapFile moved = std::move(file).value();
  EXPECT_TRUE(moved.is_mapped());
  EXPECT_EQ(moved.size(), 64U);
  MmapFile assigned;
  assigned = std::move(moved);
  EXPECT_TRUE(assigned.is_mapped());
  EXPECT_FALSE(moved.is_mapped());  // NOLINT(bugprone-use-after-move)
}

TEST(MmapFile, AdviceCallsSucceed) {
  auto dir = ScratchDir::create("mmapadv");
  ASSERT_TRUE(dir.is_ok());
  auto file = MmapFile::create(dir.value().file("adv.bin"), 4096);
  ASSERT_TRUE(file.is_ok());
  EXPECT_TRUE(file.value().advise(MmapFile::Advice::kSequential).is_ok());
  EXPECT_TRUE(file.value().advise(MmapFile::Advice::kRandom).is_ok());
  EXPECT_TRUE(file.value().advise(MmapFile::Advice::kWillNeed).is_ok());
  EXPECT_TRUE(file.value().advise(MmapFile::Advice::kNormal).is_ok());
}

TEST(CpuStats, ProcessCpuSecondsMonotone) {
  const auto before = process_cpu_seconds();
  ASSERT_TRUE(before.is_ok());
  // Burn a little CPU.
  volatile double sink = 0;
  for (int i = 0; i < 2'000'000; ++i) {
    sink = sink + static_cast<double>(i) * 1e-9;
  }
  const auto after = process_cpu_seconds();
  ASSERT_TRUE(after.is_ok());
  EXPECT_GE(after.value(), before.value());
}

TEST(CpuStats, ProbeReportsBusyLoop) {
  // Under a parallel ctest run this process may be descheduled for most
  // of the window, so assert the probe attributes *some* busy CPU to the
  // loop rather than a fair scheduling share, and retry a few times.
  double cores = 0;
  for (int attempt = 0; attempt < 5 && cores <= 0.05; ++attempt) {
    CpuUsageProbe probe;
    volatile std::uint64_t sink = 0;
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start <
           std::chrono::milliseconds(100)) {
      sink = sink + 1;
    }
    cores = probe.sample();
  }
  EXPECT_GT(cores, 0.05);
}

TEST(CpuStats, OnlineCpuCountPositive) {
  EXPECT_GE(online_cpu_count(), 1U);
}

}  // namespace
}  // namespace gpsa
