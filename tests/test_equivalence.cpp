// Cross-engine equivalence property suite.
//
// Property: for every graph family and every app, GPSA, the PSW baseline,
// and the X-Stream baseline all produce the sequential reference
// executor's results (exactly for integer payloads, within tolerance for
// PageRank) and the same message totals. This is what makes the benchmark
// comparisons apples-to-apples.
#include <gtest/gtest.h>

#include <memory>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/degree_count.hpp"
#include "apps/multi_bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/reference.hpp"
#include "apps/sssp.hpp"
#include "baselines/graphchi/psw_engine.hpp"
#include "baselines/xstream/xstream_engine.hpp"
#include "core/engine.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "test_support.hpp"

namespace gpsa {
namespace {

using testing::expect_float_payloads_near;
using testing::expect_payloads_equal;

struct GraphCase {
  const char* name;
  EdgeList (*make)();
};

EdgeList make_rmat_small() { return rmat(8, 1800, 101); }
EdgeList make_rmat_dense() { return rmat(7, 4000, 202); }
EdgeList make_er() { return erdos_renyi(400, 1600, 303); }
EdgeList make_grid() { return grid(17, 23); }
EdgeList make_tree() { return binary_tree(255); }
EdgeList make_star() { return star(200); }
EdgeList make_chain() { return chain(120); }
EdgeList make_with_isolated() {
  EdgeList g = rmat(7, 900, 404);
  g.ensure_vertices(g.num_vertices() + 40);
  return g;
}

const GraphCase kGraphCases[] = {
    {"RmatSmall", make_rmat_small}, {"RmatDense", make_rmat_dense},
    {"ErdosRenyi", make_er},        {"Grid", make_grid},
    {"BinaryTree", make_tree},      {"Star", make_star},
    {"Chain", make_chain},          {"WithIsolated", make_with_isolated},
};

class EquivalenceTest : public ::testing::TestWithParam<GraphCase> {
 protected:
  struct AllResults {
    std::vector<Payload> gpsa;
    std::vector<Payload> psw;
    std::vector<Payload> xstream;
    std::uint64_t gpsa_messages = 0;
    std::uint64_t psw_messages = 0;
    std::uint64_t xstream_messages = 0;
  };

  static AllResults run_all(const EdgeList& graph, const Program& program) {
    AllResults out;
    EngineOptions eo;
    eo.num_dispatchers = 3;
    eo.num_computers = 3;
    eo.scheduler_workers = 2;
    eo.message_batch = 16;
    auto gpsa = Engine::run(graph, program, eo);
    EXPECT_TRUE(gpsa.is_ok()) << gpsa.status().to_string();
    out.gpsa = gpsa.value().values;
    out.gpsa_messages = gpsa.value().total_messages;

    BaselineOptions bo;
    bo.threads = 2;
    bo.partitions = 3;
    auto psw = PswEngine::run(graph, program, bo);
    EXPECT_TRUE(psw.is_ok()) << psw.status().to_string();
    out.psw = psw.value().values;
    out.psw_messages = psw.value().total_messages;

    auto xs = XStreamEngine::run(graph, program, bo);
    EXPECT_TRUE(xs.is_ok()) << xs.status().to_string();
    out.xstream = xs.value().values;
    out.xstream_messages = xs.value().total_messages;
    return out;
  }
};

TEST_P(EquivalenceTest, Bfs) {
  const EdgeList graph = GetParam().make();
  const BfsProgram program(0);
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  const AllResults all = run_all(graph, program);
  expect_payloads_equal(all.gpsa, ref.values);
  expect_payloads_equal(all.psw, ref.values);
  expect_payloads_equal(all.xstream, ref.values);
  EXPECT_EQ(all.gpsa_messages, ref.total_messages);
  EXPECT_EQ(all.psw_messages, ref.total_messages);
  EXPECT_EQ(all.xstream_messages, ref.total_messages);
}

TEST_P(EquivalenceTest, ConnectedComponents) {
  const EdgeList graph = GetParam().make();
  const ConnectedComponentsProgram program;
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  const AllResults all = run_all(graph, program);
  expect_payloads_equal(all.gpsa, ref.values);
  expect_payloads_equal(all.psw, ref.values);
  expect_payloads_equal(all.xstream, ref.values);
}

TEST_P(EquivalenceTest, Sssp) {
  const EdgeList graph = GetParam().make();
  const SsspProgram program(0);
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  const AllResults all = run_all(graph, program);
  expect_payloads_equal(all.gpsa, ref.values);
  expect_payloads_equal(all.psw, ref.values);
  expect_payloads_equal(all.xstream, ref.values);
  // And the reference itself agrees with Dijkstra.
  expect_payloads_equal(ref.values,
                        oracle_sssp(Csr::from_edges(graph), 0));
}

TEST_P(EquivalenceTest, PageRankFiveSupersteps) {
  const EdgeList graph = GetParam().make();
  const PageRankProgram program(5);
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  const AllResults all = run_all(graph, program);
  expect_float_payloads_near(all.gpsa, ref.values);
  expect_float_payloads_near(all.psw, ref.values);
  expect_float_payloads_near(all.xstream, ref.values);
  EXPECT_EQ(all.gpsa_messages, ref.total_messages);
  EXPECT_EQ(all.psw_messages, ref.total_messages);
  EXPECT_EQ(all.xstream_messages, ref.total_messages);
}

TEST_P(EquivalenceTest, MultiSourceReachability) {
  const EdgeList graph = GetParam().make();
  const VertexId n = graph.num_vertices();
  const MultiSourceReachabilityProgram program(
      {0, n / 3, n / 2, n - 1});
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  const AllResults all = run_all(graph, program);
  expect_payloads_equal(all.gpsa, ref.values);
  expect_payloads_equal(all.psw, ref.values);
  expect_payloads_equal(all.xstream, ref.values);
}

TEST_P(EquivalenceTest, InDegree) {
  const EdgeList graph = GetParam().make();
  const InDegreeProgram program;
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  const AllResults all = run_all(graph, program);
  expect_payloads_equal(all.gpsa, ref.values);
  expect_payloads_equal(all.psw, ref.values);
  expect_payloads_equal(all.xstream, ref.values);
  // And the reference agrees with the transpose degrees.
  const Csr transpose = Csr::from_edges(graph).transpose();
  for (VertexId v = 0; v < transpose.num_vertices(); ++v) {
    ASSERT_EQ(ref.values[v], transpose.out_degree(v)) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(GraphFamilies, EquivalenceTest,
                         ::testing::ValuesIn(kGraphCases),
                         [](const auto& param_info) { return param_info.param.name; });

// --- Engine-configuration sweep: results must be config-invariant ------------

struct ConfigCase {
  const char* name;
  unsigned dispatchers;
  unsigned computers;
  unsigned workers;
  std::size_t batch;
  PartitionStrategy partition;
};

const ConfigCase kConfigCases[] = {
    {"Minimal", 1, 1, 1, 1, PartitionStrategy::kUniformVertices},
    {"Tiny batches", 2, 3, 2, 2, PartitionStrategy::kBalancedEdges},
    {"Wide", 8, 8, 4, 64, PartitionStrategy::kBalancedEdges},
    {"ManyDispatchers", 6, 1, 3, 32, PartitionStrategy::kUniformVertices},
    {"ManyComputers", 1, 6, 3, 256, PartitionStrategy::kBalancedEdges},
};

class ConfigSweepTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(ConfigSweepTest, BfsAndCcInvariantUnderConfig) {
  const ConfigCase& cfg = GetParam();
  const EdgeList graph = rmat(8, 2200, 777);
  EngineOptions eo;
  eo.num_dispatchers = cfg.dispatchers;
  eo.num_computers = cfg.computers;
  eo.scheduler_workers = cfg.workers;
  eo.message_batch = cfg.batch;
  eo.partition = cfg.partition;

  const Csr csr = Csr::from_edges(graph);
  {
    const BfsProgram program(0);
    const auto r = Engine::run(graph, program, eo);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    expect_payloads_equal(r.value().values,
                          reference_run(csr, program).values);
  }
  {
    const ConnectedComponentsProgram program;
    const auto r = Engine::run(graph, program, eo);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    expect_payloads_equal(r.value().values,
                          reference_run(csr, program).values);
  }
}

INSTANTIATE_TEST_SUITE_P(EngineConfigs, ConfigSweepTest,
                         ::testing::ValuesIn(kConfigCases),
                         [](const auto& param_info) {
                           std::string name = param_info.param.name;
                           for (char& c : name) {
                             if (c == ' ') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- Seed sweep (randomized property test) -----------------------------------

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, AllEnginesAgreeOnRandomGraph) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const unsigned scale = 6 + static_cast<unsigned>(rng.next_below(3));
  const EdgeCount edges = 300 + rng.next_below(3000);
  const EdgeList graph = rmat(scale, edges, seed);

  const BfsProgram bfs(static_cast<VertexId>(
      rng.next_below(graph.num_vertices())));
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), bfs);

  EngineOptions eo;
  eo.num_dispatchers = 1 + static_cast<unsigned>(rng.next_below(4));
  eo.num_computers = 1 + static_cast<unsigned>(rng.next_below(4));
  eo.scheduler_workers = 1 + static_cast<unsigned>(rng.next_below(3));
  eo.message_batch = 1 + rng.next_below(64);
  const auto gpsa = Engine::run(graph, bfs, eo);
  ASSERT_TRUE(gpsa.is_ok()) << gpsa.status().to_string();
  expect_payloads_equal(gpsa.value().values, ref.values);

  BaselineOptions bo;
  bo.threads = 1 + static_cast<unsigned>(rng.next_below(3));
  bo.partitions = 1 + static_cast<unsigned>(rng.next_below(6));
  const auto psw = PswEngine::run(graph, bfs, bo);
  ASSERT_TRUE(psw.is_ok());
  expect_payloads_equal(psw.value().values, ref.values);
  const auto xs = XStreamEngine::run(graph, bfs, bo);
  ASSERT_TRUE(xs.is_ok());
  expect_payloads_equal(xs.value().values, ref.values);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace gpsa
