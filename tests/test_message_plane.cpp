// Message-plane configuration matrix (DESIGN.md §11): the batch-buffer
// pool, the vertex->computer ownership map, and the cache-ordered apply
// path must be pure performance knobs — every application's payloads are
// identical no matter how the plane is configured.
//
// Coverage:
//   - MessageBatchPool unit contract: lease/recycle reuse, warm-up
//     accounting (steady_misses), the disabled (ablation) mode, and
//     recycled-byte tracking.
//   - OwnerMap unit contract: mod and range owner/local-index/local-size
//     arithmetic, interval-derived boundaries, name round-trips.
//   - Engine equality across the full pooling x routing x combiner cube:
//     bit-identical for the monotone apps (BFS/CC/SSSP fold with min, so
//     arrival order cannot matter); PageRank bit-identical wherever the
//     per-vertex fold order is provably unchanged (single dispatcher,
//     combiner fixed) and float-near across the order-changing crossings.
//   - RunResult surfacing: pool stats (zero steady-state misses), the
//     resolved routing, per-computer busy seconds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/engine.hpp"
#include "core/message_pool.hpp"
#include "core/ownership.hpp"
#include "graph/generators.hpp"
#include "test_support.hpp"

namespace gpsa {
namespace {

using testing::diamond_graph;
using testing::expect_float_payloads_near;
using testing::expect_payloads_equal;

// --- MessageBatchPool --------------------------------------------------------

TEST(MessagePool, LeaseRecycleReusesCapacity) {
  MessageBatchPool pool(64);
  auto first = pool.lease();
  EXPECT_TRUE(first.empty());
  EXPECT_GE(first.capacity(), 64u);
  first.push_back(VertexMessage{});
  pool.recycle(std::move(first));

  auto second = pool.lease();
  EXPECT_TRUE(second.empty());  // recycle() must clear
  EXPECT_GE(second.capacity(), 64u);

  const MessagePoolStats stats = pool.stats();
  EXPECT_TRUE(stats.enabled);
  EXPECT_EQ(stats.leases, 2u);
  EXPECT_EQ(stats.misses, 1u);  // only the first lease allocated
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.steady_misses, 0u);
}

TEST(MessagePool, SteadyMissesCountOnlyAfterWarmup) {
  MessageBatchPool pool(16);
  // Warm-up: two supersteps' worth of misses are expected and free.
  auto a = pool.lease();
  auto b = pool.lease();
  pool.mark_superstep();
  pool.recycle(std::move(a));
  pool.mark_superstep();
  EXPECT_EQ(pool.stats().steady_misses, 0u);

  // Steady state: a hit stays clean, a fresh allocation is a violation.
  auto hit = pool.lease();  // served from the recycled buffer
  EXPECT_EQ(pool.stats().steady_misses, 0u);
  auto miss = pool.lease();  // free list empty -> allocates
  const MessagePoolStats stats = pool.stats();
  EXPECT_EQ(stats.steady_misses, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 1u);
  pool.recycle(std::move(b));
  pool.recycle(std::move(hit));
  pool.recycle(std::move(miss));
}

TEST(MessagePool, DisabledModeAllocatesAndDrops) {
  MessageBatchPool pool(32, /*enabled=*/false);
  auto buffer = pool.lease();
  EXPECT_GE(buffer.capacity(), 32u);
  pool.recycle(std::move(buffer));
  auto again = pool.lease();
  EXPECT_GE(again.capacity(), 32u);

  // The ablation baseline reports nothing but its disabled flag: the
  // bench must not be able to mistake it for a pooled run.
  const MessagePoolStats stats = pool.stats();
  EXPECT_FALSE(stats.enabled);
  EXPECT_EQ(stats.leases, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.recycled_bytes, 0u);
}

TEST(MessagePool, RecycledBytesTrackCapacity) {
  MessageBatchPool pool(128);
  auto buffer = pool.lease();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(buffer.capacity()) * sizeof(VertexMessage);
  pool.recycle(std::move(buffer));
  EXPECT_EQ(pool.stats().recycled_bytes, expected);
}

// --- OwnerMap ----------------------------------------------------------------

TEST(OwnerMap, ModInterleavesAndPacksLocalIndices) {
  const OwnerMap map = OwnerMap::make_mod(/*num_vertices=*/10, /*parts=*/3);
  EXPECT_EQ(map.routing(), MessageRouting::kMod);
  EXPECT_EQ(map.parts(), 3u);
  for (VertexId v = 0; v < 10; ++v) {
    EXPECT_EQ(map.owner_of(v), v % 3) << "vertex " << v;
    EXPECT_EQ(map.local_index(v, map.owner_of(v)), v / 3) << "vertex " << v;
  }
  // Vertices 0,3,6,9 / 1,4,7 / 2,5,8.
  EXPECT_EQ(map.local_size(0), 4u);
  EXPECT_EQ(map.local_size(1), 3u);
  EXPECT_EQ(map.local_size(2), 3u);
}

TEST(OwnerMap, RangeOwnsContiguousSlices) {
  const OwnerMap map = OwnerMap::make_range({0, 4, 7, 10});
  EXPECT_EQ(map.routing(), MessageRouting::kRange);
  EXPECT_EQ(map.parts(), 3u);
  EXPECT_EQ(map.num_vertices(), 10u);
  for (VertexId v = 0; v < 10; ++v) {
    const unsigned owner = v < 4 ? 0 : (v < 7 ? 1 : 2);
    EXPECT_EQ(map.owner_of(v), owner) << "vertex " << v;
    EXPECT_EQ(map.local_index(v, owner), v - map.range_begin(owner))
        << "vertex " << v;
  }
  EXPECT_EQ(map.local_size(0), 4u);
  EXPECT_EQ(map.local_size(1), 3u);
  EXPECT_EQ(map.local_size(2), 3u);
  EXPECT_EQ(map.range_begin(1), 4u);
  EXPECT_EQ(map.range_end(1), 7u);
}

TEST(OwnerMap, RangeFromIntervalsUsesIntervalBoundaries) {
  std::vector<Interval> intervals(2);
  intervals[0].begin_vertex = 0;
  intervals[0].end_vertex = 5;
  intervals[1].begin_vertex = 5;
  intervals[1].end_vertex = 9;
  const OwnerMap map = OwnerMap::make_range_from_intervals(intervals);
  EXPECT_EQ(map.parts(), 2u);
  EXPECT_EQ(map.num_vertices(), 9u);
  EXPECT_EQ(map.owner_of(4), 0u);
  EXPECT_EQ(map.owner_of(5), 1u);
  EXPECT_EQ(map.local_index(8, 1), 3u);
}

TEST(OwnerMap, RoutingNamesRoundTrip) {
  for (const auto routing : {MessageRouting::kMod, MessageRouting::kRange}) {
    const auto parsed = parse_message_routing(message_routing_name(routing));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), routing);
  }
  EXPECT_FALSE(parse_message_routing("hash").is_ok());
  EXPECT_FALSE(parse_message_routing("").is_ok());
}

TEST(OwnerMap, ResolveFollowsEnvAndDefaultsToRange) {
  ASSERT_EQ(::setenv("GPSA_ROUTING", "mod", 1), 0);
  EXPECT_EQ(resolve_message_routing(std::nullopt), MessageRouting::kMod);
  // Explicit request beats the environment.
  EXPECT_EQ(resolve_message_routing(MessageRouting::kRange),
            MessageRouting::kRange);
  ASSERT_EQ(::setenv("GPSA_ROUTING", "bogus", 1), 0);
  EXPECT_EQ(resolve_message_routing(std::nullopt), MessageRouting::kRange);
  ASSERT_EQ(::unsetenv("GPSA_ROUTING"), 0);
  EXPECT_EQ(resolve_message_routing(std::nullopt), MessageRouting::kRange);
}

TEST(MessagePool, ResolveFollowsEnvAndDefaultsToOn) {
  ASSERT_EQ(::setenv("GPSA_MSG_POOL", "0", 1), 0);
  EXPECT_FALSE(resolve_message_pool_enabled(std::nullopt));
  EXPECT_TRUE(resolve_message_pool_enabled(true));  // explicit beats env
  ASSERT_EQ(::unsetenv("GPSA_MSG_POOL"), 0);
  EXPECT_TRUE(resolve_message_pool_enabled(std::nullopt));
}

// --- Engine equality across the configuration cube ---------------------------

EngineOptions plane_options(bool pool, MessageRouting routing, bool combine,
                            unsigned dispatchers = 2, unsigned computers = 3) {
  EngineOptions eo;
  eo.num_dispatchers = dispatchers;
  eo.num_computers = computers;
  eo.message_batch = 256;  // small batches: plenty of lease/recycle traffic
  eo.message_pool = pool;
  eo.routing = routing;
  eo.enable_combiner = combine;
  return eo;
}

class MessagePlaneEquality : public ::testing::Test {
 protected:
  static EdgeList test_graph() {
    return generate_paper_graph(PaperGraph::kGoogle, 0.05, 11);
  }
};

TEST_F(MessagePlaneEquality, MonotoneAppsBitIdenticalAcrossFullCube) {
  const EdgeList graph = test_graph();
  const BfsProgram bfs(0);
  const ConnectedComponentsProgram cc;
  const SsspProgram sssp(0);
  for (const Program* program :
       std::initializer_list<const Program*>{&bfs, &cc, &sssp}) {
    SCOPED_TRACE(program->name());
    // Baseline is the legacy plane: allocate-per-flush, interleaved mod
    // routing, no combiner.
    const auto baseline = Engine::run(
        graph, *program,
        plane_options(false, MessageRouting::kMod, false));
    ASSERT_TRUE(baseline.is_ok());
    for (const bool pool : {false, true}) {
      for (const auto routing :
           {MessageRouting::kMod, MessageRouting::kRange}) {
        for (const bool combine : {false, true}) {
          SCOPED_TRACE(::testing::Message()
                       << "pool=" << pool << " routing="
                       << message_routing_name(routing)
                       << " combine=" << combine);
          const auto result =
              Engine::run(graph, *program, plane_options(pool, routing, combine));
          ASSERT_TRUE(result.is_ok());
          EXPECT_EQ(result.value().routing, routing);
          EXPECT_EQ(result.value().pool.enabled, pool);
          expect_payloads_equal(result.value().values,
                                baseline.value().values);
        }
      }
    }
  }
}

TEST_F(MessagePlaneEquality, PageRankBitIdenticalWhereFoldOrderIsFixed) {
  // With a single dispatcher the per-vertex fold order is the dispatch
  // scan order under mod routing and — because the radix scatter is a
  // stable counting sort — exactly the same order under range routing.
  // Pooling never reorders anything. So this 2x2 must be bit-identical.
  const EdgeList graph = test_graph();
  const PageRankProgram program(4);
  const auto baseline = Engine::run(
      graph, program,
      plane_options(false, MessageRouting::kMod, false, /*dispatchers=*/1));
  ASSERT_TRUE(baseline.is_ok());
  for (const bool pool : {false, true}) {
    for (const auto routing : {MessageRouting::kMod, MessageRouting::kRange}) {
      SCOPED_TRACE(::testing::Message()
                   << "pool=" << pool << " routing="
                   << message_routing_name(routing));
      const auto result = Engine::run(
          graph, program,
          plane_options(pool, routing, false, /*dispatchers=*/1));
      ASSERT_TRUE(result.is_ok());
      EXPECT_EQ(result.value().total_messages,
                baseline.value().total_messages);
      expect_payloads_equal(result.value().values, baseline.value().values);
    }
  }
}

TEST_F(MessagePlaneEquality, PageRankNearEqualAcrossOrderChangingConfigs) {
  // Combining re-associates the float fold and multiple dispatchers
  // interleave arrival order, so these crossings are near-equal, not
  // bit-equal.
  const EdgeList graph = test_graph();
  const PageRankProgram program(4);
  const auto baseline = Engine::run(
      graph, program, plane_options(false, MessageRouting::kMod, false));
  ASSERT_TRUE(baseline.is_ok());
  for (const bool pool : {false, true}) {
    for (const auto routing : {MessageRouting::kMod, MessageRouting::kRange}) {
      for (const bool combine : {false, true}) {
        SCOPED_TRACE(::testing::Message()
                     << "pool=" << pool << " routing="
                     << message_routing_name(routing)
                     << " combine=" << combine);
        const auto result =
            Engine::run(graph, program, plane_options(pool, routing, combine));
        ASSERT_TRUE(result.is_ok());
        expect_float_payloads_near(result.value().values,
                                   baseline.value().values);
      }
    }
  }
}

// --- RunResult surfacing ------------------------------------------------------

TEST_F(MessagePlaneEquality, PooledRunReportsZeroSteadyMisses) {
  const EdgeList graph = test_graph();
  const PageRankProgram program(6);  // enough supersteps to leave warm-up
  const auto result = Engine::run(
      graph, program, plane_options(true, MessageRouting::kRange, false));
  ASSERT_TRUE(result.is_ok());
  const MessagePoolStats& pool = result.value().pool;
  EXPECT_TRUE(pool.enabled);
  EXPECT_GT(pool.leases, 0u);
  EXPECT_GT(pool.hits, 0u);
  EXPECT_GT(pool.recycled_bytes, 0u);
  // The pool's whole point: once warm, the plane allocates nothing.
  EXPECT_EQ(pool.steady_misses, 0u);

  // The compute-side busy clock is populated per spawned computer.
  ASSERT_FALSE(result.value().computer_busy_seconds.empty());
  for (const double busy : result.value().computer_busy_seconds) {
    EXPECT_GE(busy, 0.0);
    EXPECT_LE(busy, result.value().elapsed_seconds);
  }
}

TEST_F(MessagePlaneEquality, UnpooledRunReportsDisabledStats) {
  const EdgeList graph = test_graph();
  const PageRankProgram program(3);
  const auto result = Engine::run(
      graph, program, plane_options(false, MessageRouting::kRange, false));
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().pool.enabled);
  EXPECT_EQ(result.value().pool.hits, 0u);
  EXPECT_EQ(result.value().pool.recycled_bytes, 0u);
}

TEST(MessagePlaneEdge, MoreComputersThanVerticesShrinksToNonEmptySlices) {
  // Six vertices, eight requested computers: range routing spawns one
  // computer per non-empty interval slice and must still be correct.
  const EdgeList graph = diamond_graph();
  const BfsProgram program(0);
  EngineOptions one = plane_options(true, MessageRouting::kRange, false,
                                    /*dispatchers=*/1, /*computers=*/1);
  EngineOptions many = plane_options(true, MessageRouting::kRange, false,
                                     /*dispatchers=*/2, /*computers=*/8);
  const auto a = Engine::run(graph, program, one);
  const auto b = Engine::run(graph, program, many);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_LE(b.value().computer_busy_seconds.size(), 6u);
  expect_payloads_equal(b.value().values, a.value().values);
}

}  // namespace
}  // namespace gpsa
