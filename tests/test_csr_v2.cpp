// v2 CSR storage (DESIGN.md §16): varint delta-gap codec, renumbering
// permutations, format negotiation, the converter, byte-weighted
// partitioning, checkpoint write-back batching, and — the contract the
// CI csr-v2 gate leans on — result equality across format x order x
// exec mode x I/O backend. v1 files must stay byte-for-byte what the
// historical writer produced.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/pagerank.hpp"
#include "cluster/cluster_net.hpp"
#include "core/engine.hpp"
#include "graph/csr_file.hpp"
#include "graph/csr_v2.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "platform/file_util.hpp"
#include "test_support.hpp"

namespace gpsa {
namespace {

using testing::diamond_graph;
using testing::expect_float_payloads_near;
using testing::expect_payloads_equal;

// --- Varint codec ------------------------------------------------------------

TEST(CsrV2Varint, RoundTripsBoundaryValues) {
  for (const std::uint32_t value :
       {0u, 1u, 127u, 128u, 16383u, 16384u, 0x1fffffu, 0x200000u, 0xfffffffu,
        0x10000000u, 0xffffffffu}) {
    std::vector<std::uint8_t> bytes;
    append_varint(bytes, value);
    ASSERT_LE(bytes.size(), kMaxVarintBytes);
    const std::uint8_t* p = bytes.data();
    std::uint32_t decoded = 0;
    ASSERT_TRUE(decode_varint(p, bytes.data() + bytes.size(), decoded));
    EXPECT_EQ(decoded, value);
    EXPECT_EQ(p, bytes.data() + bytes.size());
    // The fast decoder must agree on checked-accepted bytes.
    const std::uint8_t* q = bytes.data();
    EXPECT_EQ(read_varint_fast(q), value);
    EXPECT_EQ(q, p);
  }
}

TEST(CsrV2Varint, RejectsTruncatedAndOverlongGroups) {
  // Truncated: continuation bit set, no next byte.
  const std::uint8_t truncated[] = {0x80};
  const std::uint8_t* p = truncated;
  std::uint32_t value = 0;
  EXPECT_FALSE(decode_varint(p, truncated + 1, value));

  // Six-byte group: one byte past the 32-bit maximum.
  const std::uint8_t overlong[] = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  p = overlong;
  EXPECT_FALSE(decode_varint(p, overlong + sizeof(overlong), value));

  // Five bytes but with set bits beyond bit 31 (would silently wrap).
  const std::uint8_t overflow[] = {0xff, 0xff, 0xff, 0xff, 0x1f};
  p = overflow;
  EXPECT_FALSE(decode_varint(p, overflow + sizeof(overflow), value));

  // The same five bytes capped at bit 31 are the legitimate UINT32_MAX.
  const std::uint8_t max32[] = {0xff, 0xff, 0xff, 0xff, 0x0f};
  p = max32;
  ASSERT_TRUE(decode_varint(p, max32 + sizeof(max32), value));
  EXPECT_EQ(value, 0xffffffffu);

  // Empty input.
  p = max32;
  EXPECT_FALSE(decode_varint(p, max32, value));
}

// --- Record codec ------------------------------------------------------------

std::vector<std::int32_t> checked_decode_or_die(
    const std::vector<std::uint8_t>& bytes, VertexId n) {
  std::vector<std::int32_t> out;
  const Status st = decode_csr_v2_record_checked(bytes, n, out);
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  return out;
}

TEST(CsrV2Record, RoundTripsAcrossRestartBoundaries) {
  // 600 targets crosses two restart points (256, 512); gaps of 3 with a
  // duplicate pair thrown in (gap 0 must be legal inside a record).
  std::vector<VertexId> targets;
  for (VertexId i = 0; i < 600; ++i) {
    targets.push_back(3 * i);
  }
  targets.push_back(targets.back());

  std::vector<std::uint8_t> bytes;
  encode_csr_v2_record(targets, bytes);
  const auto entries =
      checked_decode_or_die(bytes, /*num_vertices=*/3 * 600 + 1);
  ASSERT_EQ(entries.size(), targets.size() + 2);
  EXPECT_EQ(entries.front(), static_cast<std::int32_t>(targets.size()));
  EXPECT_EQ(entries.back(), kCsrEndOfList);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(entries[i + 1], static_cast<std::int32_t>(targets[i]));
  }

  // The hot-path decoder agrees entry for entry.
  std::vector<std::int32_t> fast(targets.size() + 2);
  ASSERT_EQ(decode_csr_v2_record_fast(bytes.data(), fast.data()),
            fast.size());
  EXPECT_EQ(fast, entries);
}

TEST(CsrV2Record, EmptyRecordIsOneByte) {
  std::vector<std::uint8_t> bytes;
  encode_csr_v2_record({}, bytes);
  ASSERT_EQ(bytes.size(), 1u);
  const auto entries = checked_decode_or_die(bytes, 1);
  EXPECT_EQ(entries, (std::vector<std::int32_t>{0, kCsrEndOfList}));
}

TEST(CsrV2Record, CheckedDecodeRejectsMalformedRecords) {
  std::vector<std::int32_t> out;
  const VertexId n = 100;

  // Degree varint truncated.
  EXPECT_FALSE(decode_csr_v2_record_checked(
                   std::vector<std::uint8_t>{0x80}, n, out)
                   .is_ok());
  // Degree larger than the remaining bytes could possibly hold.
  EXPECT_FALSE(decode_csr_v2_record_checked(
                   std::vector<std::uint8_t>{0x09, 0x01}, n, out)
                   .is_ok());
  // Target out of range.
  EXPECT_FALSE(decode_csr_v2_record_checked(
                   std::vector<std::uint8_t>{0x01, 0x64}, n, out)
                   .is_ok());
  // Gap overflowing the id space: absolute 0xffffffff then gap 1.
  EXPECT_FALSE(decode_csr_v2_record_checked(
                   std::vector<std::uint8_t>{0x02, 0xff, 0xff, 0xff, 0xff,
                                             0x0f, 0x01},
                   0x7fffffffu, out)
                   .is_ok());
  // Trailing bytes after the last target.
  EXPECT_FALSE(decode_csr_v2_record_checked(
                   std::vector<std::uint8_t>{0x01, 0x05, 0x00}, n, out)
                   .is_ok());
  // A well-formed record still decodes after all those rejections (the
  // output vector must not have been corrupted by partial appends).
  out.clear();
  EXPECT_TRUE(decode_csr_v2_record_checked(
                  std::vector<std::uint8_t>{0x02, 0x05, 0x02}, n, out)
                  .is_ok());
  EXPECT_EQ(out, (std::vector<std::int32_t>{2, 5, 7, kCsrEndOfList}));
}

TEST(CsrV2Record, CheckedDecodeRejectsDescendingRestart) {
  // Two targets around a restart boundary where the absolute restart
  // value goes *backwards*: 256 targets 0..255, then absolute 10.
  std::vector<VertexId> targets(kCsrV2RestartInterval);
  std::iota(targets.begin(), targets.end(), 0u);
  std::vector<std::uint8_t> bytes;
  append_varint(bytes, kCsrV2RestartInterval + 1);  // degree
  append_varint(bytes, targets[0]);
  for (std::size_t i = 1; i < targets.size(); ++i) {
    append_varint(bytes, targets[i] - targets[i - 1]);
  }
  append_varint(bytes, 10);  // restart slot: absolute, and non-ascending
  std::vector<std::int32_t> out;
  EXPECT_FALSE(decode_csr_v2_record_checked(bytes, 1000, out).is_ok());
}

// --- Order permutations ------------------------------------------------------

void expect_is_permutation(const std::vector<VertexId>& perm, VertexId n) {
  ASSERT_EQ(perm.size(), n);
  std::vector<bool> seen(n, false);
  for (const VertexId v : perm) {
    ASSERT_LT(v, n);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(CsrV2Order, DegreePermutationIsStableHubsFirst) {
  const Csr csr = Csr::from_edges(diamond_graph());
  const auto perm = build_order_permutation(csr, CsrOrder::kDegree);
  expect_is_permutation(perm, csr.num_vertices());
  // Degrees: v0=2, v1=1, v2=1, v3=1, v4=0, v5=0 -> hubs first, ties in
  // original id order (stable).
  EXPECT_EQ(perm, (std::vector<VertexId>{0, 1, 2, 3, 4, 5}));

  const Csr reversed = Csr::from_edges([] {
    EdgeList g;
    g.add_edge(4, 0);
    g.add_edge(4, 1);
    g.add_edge(4, 2);
    g.add_edge(2, 0);
    g.ensure_vertices(5);
    return g;
  }());
  const auto hub_last = build_order_permutation(reversed, CsrOrder::kDegree);
  expect_is_permutation(hub_last, 5);
  EXPECT_EQ(hub_last[0], 4u);  // degree 3 hub gets new id 0
  EXPECT_EQ(hub_last[1], 2u);  // degree 1 next
}

TEST(CsrV2Order, BfsPermutationCoversEveryComponent) {
  // diamond_graph has an isolated vertex 5 — BFS roots must reach it.
  const Csr csr = Csr::from_edges(diamond_graph());
  const auto perm = build_order_permutation(csr, CsrOrder::kBfs);
  expect_is_permutation(perm, csr.num_vertices());
  const auto identity =
      build_order_permutation(csr, CsrOrder::kNone);
  EXPECT_EQ(identity, (std::vector<VertexId>{0, 1, 2, 3, 4, 5}));
}

TEST(CsrV2Order, NamesAndEnvResolutionRoundTrip) {
  for (const auto order :
       {CsrOrder::kNone, CsrOrder::kDegree, CsrOrder::kBfs}) {
    const auto parsed = parse_csr_order(csr_order_name(order));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), order);
  }
  EXPECT_FALSE(parse_csr_order("hilbert").is_ok());
  for (const auto format : {CsrFormat::kV1, CsrFormat::kV2}) {
    const auto parsed = parse_csr_format(csr_format_name(format));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), format);
  }
  EXPECT_FALSE(parse_csr_format("v3").is_ok());
  // Explicit request beats the environment/default.
  EXPECT_EQ(resolve_csr_format(CsrFormat::kV2), CsrFormat::kV2);
  EXPECT_EQ(resolve_csr_order(CsrOrder::kBfs), CsrOrder::kBfs);
}

// --- File format -------------------------------------------------------------

TEST(CsrV2File, V1LayoutIsByteForByteTheHistoricalOne) {
  auto dir = ScratchDir::create("csr_v2_golden");
  ASSERT_TRUE(dir.is_ok());
  const std::string base = dir.value().file("golden.csr");
  ASSERT_TRUE(preprocess_edges_to_csr(diamond_graph(), base,
                                      /*with_degree=*/true)
                  .is_ok());

  auto bytes_or = read_file(base);
  ASSERT_TRUE(bytes_or.is_ok());
  const auto& bytes = bytes_or.value();
  CsrFileHeader header{};
  ASSERT_GE(bytes.size(), sizeof(header));
  std::memcpy(&header, bytes.data(), sizeof(header));
  EXPECT_EQ(header.magic, CsrFileHeader::kMagic);
  EXPECT_EQ(header.version, CsrFileHeader::kVersion);
  EXPECT_EQ(header.flags, CsrFileHeader::kFlagHasDegree);
  EXPECT_EQ(header.num_vertices, 6u);
  EXPECT_EQ(header.num_edges, 5u);
  EXPECT_EQ(header.num_entries, 5u + 2u * 6u);

  // [deg] targets -1 per vertex, in id order.
  const std::vector<std::int32_t> expected = {
      2, 1, 2, -1, 1, 3, -1, 1, 3, -1, 1, 4, -1, 0, -1, 0, -1};
  ASSERT_EQ(bytes.size(), sizeof(header) + expected.size() * 4);
  std::vector<std::int32_t> entries(expected.size());
  std::memcpy(entries.data(), bytes.data() + sizeof(header),
              expected.size() * 4);
  EXPECT_EQ(entries, expected);
}

/// Opens `base` and returns every record as (degree, targets) keyed by
/// *original* vertex id (translated through the permutation if present).
std::vector<std::vector<std::int32_t>> original_adjacency(
    const std::string& base) {
  auto reader_or = CsrFileReader::open(base);
  EXPECT_TRUE(reader_or.is_ok()) << reader_or.status().to_string();
  const CsrFileReader& reader = reader_or.value();
  const auto perm = reader.permutation();
  std::vector<VertexId> inverse(perm.empty() ? 0 : reader.num_vertices());
  for (VertexId nv = 0; nv < static_cast<VertexId>(perm.size()); ++nv) {
    inverse[perm[nv]] = nv;
  }
  std::vector<std::vector<std::int32_t>> adj(reader.num_vertices());
  for (VertexId ov = 0; ov < reader.num_vertices(); ++ov) {
    const VertexId v = perm.empty() ? ov : inverse[ov];
    const auto record = reader.record(v);
    std::vector<std::int32_t> targets(record.targets.begin(),
                                      record.targets.end());
    if (!perm.empty()) {
      for (std::int32_t& t : targets) {
        t = static_cast<std::int32_t>(perm[static_cast<VertexId>(t)]);
      }
    }
    std::sort(targets.begin(), targets.end());
    adj[ov] = std::move(targets);
  }
  return adj;
}

TEST(CsrV2File, V2RoundTripsEveryOrderAgainstV1) {
  auto dir = ScratchDir::create("csr_v2_roundtrip");
  ASSERT_TRUE(dir.is_ok());
  const EdgeList graph = rmat(/*scale=*/8, /*edges=*/4000, /*seed=*/7);

  const std::string v1_base = dir.value().file("v1.csr");
  ASSERT_TRUE(preprocess_edges_to_csr(graph, v1_base, true).is_ok());
  const auto v1_adj = original_adjacency(v1_base);

  for (const auto order :
       {CsrOrder::kNone, CsrOrder::kDegree, CsrOrder::kBfs}) {
    const std::string v2_base =
        dir.value().file(std::string("v2_") + csr_order_name(order) + ".csr");
    ASSERT_TRUE(preprocess_edges_to_csr(graph, v2_base, true, CsrFormat::kV2,
                                        order)
                    .is_ok());
    auto reader_or = CsrFileReader::open(v2_base);
    ASSERT_TRUE(reader_or.is_ok());
    EXPECT_EQ(reader_or.value().format(), CsrFormat::kV2);
    EXPECT_EQ(reader_or.value().order(), order);
    EXPECT_EQ(reader_or.value().unit_bytes(), 1u);
    EXPECT_EQ(reader_or.value().permutation().empty(),
              order == CsrOrder::kNone);
    EXPECT_EQ(original_adjacency(v2_base), v1_adj);
  }

  // v1 cannot carry an order.
  EXPECT_FALSE(preprocess_edges_to_csr(graph, dir.value().file("bad.csr"),
                                       true, CsrFormat::kV1,
                                       CsrOrder::kDegree)
                   .is_ok());
}

TEST(CsrV2File, CompressesTheRmatStandInAtLeastOnePointFive) {
  auto dir = ScratchDir::create("csr_v2_ratio");
  ASSERT_TRUE(dir.is_ok());
  const EdgeList graph = rmat(/*scale=*/10, /*edges=*/30000, /*seed=*/3);
  const std::string v1_base = dir.value().file("v1.csr");
  const std::string v2_base = dir.value().file("v2.csr");
  ASSERT_TRUE(preprocess_edges_to_csr(graph, v1_base, true).is_ok());
  ASSERT_TRUE(preprocess_edges_to_csr(graph, v2_base, true, CsrFormat::kV2,
                                      CsrOrder::kNone)
                  .is_ok());
  auto v1 = CsrFileReader::open(v1_base);
  auto v2 = CsrFileReader::open(v2_base);
  ASSERT_TRUE(v1.is_ok() && v2.is_ok());
  EXPECT_GE(v1.value().entry_file_bytes() * 2,
            v2.value().entry_file_bytes() * 3)
      << "v1=" << v1.value().entry_file_bytes()
      << " v2=" << v2.value().entry_file_bytes();
}

TEST(CsrV2File, ConverterRoundTripsBothDirections) {
  auto dir = ScratchDir::create("csr_v2_convert");
  ASSERT_TRUE(dir.is_ok());
  const EdgeList graph = rmat(/*scale=*/7, /*edges=*/2000, /*seed=*/11);
  const std::string v1_base = dir.value().file("v1.csr");
  ASSERT_TRUE(preprocess_edges_to_csr(graph, v1_base, true).is_ok());
  const auto reference = original_adjacency(v1_base);

  // v1 -> v2/degree -> v1 again: the renumbered file converts back to
  // original ids (the converter reads through the permutation).
  const std::string v2_base = dir.value().file("v2.csr");
  const std::string back_base = dir.value().file("back.csr");
  ASSERT_TRUE(convert_csr_file(v1_base, v2_base, CsrFormat::kV2,
                               CsrOrder::kDegree, true)
                  .is_ok());
  EXPECT_EQ(original_adjacency(v2_base), reference);
  ASSERT_TRUE(convert_csr_file(v2_base, back_base, CsrFormat::kV1,
                               CsrOrder::kNone, true)
                  .is_ok());
  auto back = CsrFileReader::open(back_base);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().format(), CsrFormat::kV1);
  EXPECT_EQ(original_adjacency(back_base), reference);
}

// --- Version negotiation / corruption rejection ------------------------------

class CsrV2Negotiation : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = ScratchDir::create("csr_v2_negotiate");
    ASSERT_TRUE(dir.is_ok());
    dir_ = std::move(dir).value();
    base_ = dir_.file("file.csr");
    ASSERT_TRUE(preprocess_edges_to_csr(rmat(6, 500, 5), base_, true,
                                        CsrFormat::kV2, CsrOrder::kNone)
                    .is_ok());
    auto bytes = read_file(base_);
    ASSERT_TRUE(bytes.is_ok());
    entry_bytes_ = std::move(bytes).value();
  }

  /// Rewrites the entry file with `mutate` applied to a fresh copy and
  /// expects open() to reject it.
  void expect_rejected(void (*mutate)(std::vector<std::byte>&),
                       const char* what) {
    std::vector<std::byte> copy = entry_bytes_;
    mutate(copy);
    ASSERT_TRUE(write_file(base_, copy.data(), copy.size()).is_ok());
    EXPECT_FALSE(CsrFileReader::open(base_).is_ok()) << what;
  }

  static CsrFileHeader& header_of(std::vector<std::byte>& bytes) {
    return *reinterpret_cast<CsrFileHeader*>(bytes.data());
  }

  ScratchDir dir_;
  std::string base_;
  std::vector<std::byte> entry_bytes_;
};

TEST_F(CsrV2Negotiation, AcceptsThePristineFile) {
  EXPECT_TRUE(CsrFileReader::open(base_).is_ok());
}

TEST_F(CsrV2Negotiation, RejectsUnknownVersion) {
  expect_rejected([](std::vector<std::byte>& b) { header_of(b).version = 3; },
                  "version 3");
}

TEST_F(CsrV2Negotiation, RejectsV2WithoutDegreeFlag) {
  expect_rejected(
      [](std::vector<std::byte>& b) {
        header_of(b).flags &= ~CsrFileHeader::kFlagHasDegree;
      },
      "v2 without has_degree");
}

TEST_F(CsrV2Negotiation, RejectsUnknownFlagBits) {
  expect_rejected(
      [](std::vector<std::byte>& b) { header_of(b).flags |= 1u << 4; },
      "reserved flag bit");
}

TEST_F(CsrV2Negotiation, RejectsTruncatedBody) {
  expect_rejected([](std::vector<std::byte>& b) { b.pop_back(); },
                  "body one byte short of the header's num_entries");
}

TEST_F(CsrV2Negotiation, RejectsDegreeSumMismatch) {
  expect_rejected(
      [](std::vector<std::byte>& b) { header_of(b).num_edges += 1; },
      "decoded degrees must sum to num_edges");
}

TEST_F(CsrV2Negotiation, RejectsTruncatedVarintChain) {
  expect_rejected(
      [](std::vector<std::byte>& b) { b.back() = std::byte{0x80}; },
      "final record ends mid-varint");
}

TEST_F(CsrV2Negotiation, RejectsOrderFlagWithoutPermFile) {
  expect_rejected(
      [](std::vector<std::byte>& b) {
        header_of(b).flags |= 1u << CsrFileHeader::kOrderShift;
      },
      "order flag set but no .perm sidecar");
}

TEST_F(CsrV2Negotiation, RejectsNonBijectivePermFile) {
  auto dir = ScratchDir::create("csr_v2_badperm");
  ASSERT_TRUE(dir.is_ok());
  const std::string base = dir.value().file("perm.csr");
  ASSERT_TRUE(preprocess_edges_to_csr(rmat(6, 500, 5), base, true,
                                      CsrFormat::kV2, CsrOrder::kDegree)
                  .is_ok());
  ASSERT_TRUE(CsrFileReader::open(base).is_ok());
  auto perm_bytes = read_file(base + ".perm");
  ASSERT_TRUE(perm_bytes.is_ok());
  auto bytes = std::move(perm_bytes).value();
  // Duplicate entry 0 over entry 1: no longer a bijection.
  std::memcpy(bytes.data() + sizeof(CsrPermHeader) + sizeof(VertexId),
              bytes.data() + sizeof(CsrPermHeader), sizeof(VertexId));
  ASSERT_TRUE(write_file(base + ".perm", bytes.data(), bytes.size()).is_ok());
  EXPECT_FALSE(CsrFileReader::open(base).is_ok());
}

// --- Byte-weighted partitioning ----------------------------------------------

TEST(CsrV2Partition, BalancedEdgesWeighsEncodedBytesNotDegrees) {
  // Two halves with *identical degrees* but very different encoded sizes:
  // the first half's targets are scattered across the id space (large
  // gaps, multi-byte varints), the second half's are consecutive
  // neighbors (one-byte gaps). A degree-weighted cut would split at the
  // midpoint and hand part 0 most of the bytes.
  const VertexId n = 2048;
  const VertexId half = n / 2;
  const unsigned degree = 8;
  EdgeList graph;
  graph.ensure_vertices(n);
  for (VertexId v = 0; v < half; ++v) {
    for (unsigned i = 0; i < degree; ++i) {
      graph.add_edge(v, (v * 37 + i * (n / degree)) % n);  // scattered
    }
  }
  for (VertexId v = half; v < n; ++v) {
    for (unsigned i = 0; i < degree; ++i) {
      graph.add_edge(v, (v + 1 + i) % n);  // consecutive
    }
  }

  auto dir = ScratchDir::create("csr_v2_partition");
  ASSERT_TRUE(dir.is_ok());
  const std::string base = dir.value().file("skew.csr");
  ASSERT_TRUE(preprocess_edges_to_csr(graph, base, true, CsrFormat::kV2,
                                      CsrOrder::kNone)
                  .is_ok());
  auto reader_or = CsrFileReader::open(base);
  ASSERT_TRUE(reader_or.is_ok());
  const CsrFileReader& reader = reader_or.value();
  const auto offsets = reader.record_offsets();

  // The scattered half must actually cost more bytes, or the fixture
  // proves nothing.
  ASSERT_GT(offsets[half] - offsets[0],
            (offsets[n] - offsets[half]) * 3 / 2);

  const unsigned parts = 4;
  std::uint64_t max_record = 0;
  for (VertexId v = 0; v < n; ++v) {
    max_record = std::max(max_record, offsets[v + 1] - offsets[v]);
  }
  const auto intervals =
      make_intervals(reader, parts, PartitionStrategy::kBalancedEdges);
  ASSERT_EQ(intervals.size(), parts);
  std::uint64_t total_edges = 0;
  for (const Interval& iv : intervals) {
    // In v2 begin/end_entry are byte offsets; the greedy prefix cut
    // guarantees no part exceeds its ideal share by more than one record.
    EXPECT_LE(iv.end_entry - iv.begin_entry,
              reader.num_units() / parts + max_record)
        << "interval [" << iv.begin_vertex << ", " << iv.end_vertex << ")";
    // edge_count must be true edges, not the byte weights build() summed.
    std::uint64_t edges_in_interval = 0;
    for (VertexId v = iv.begin_vertex; v < iv.end_vertex; ++v) {
      edges_in_interval += reader.out_degree(v);
    }
    EXPECT_EQ(iv.edge_count, edges_in_interval);
    total_edges += iv.edge_count;
  }
  EXPECT_EQ(total_edges, reader.num_edges());
}

// --- Engine equality matrix --------------------------------------------------

Result<RunResult> run_engine(const EdgeList& graph, const Program& program,
                             CsrFormat format, CsrOrder order, ExecMode exec,
                             IoBackendKind backend, unsigned actors) {
  EngineOptions eo;
  eo.num_dispatchers = actors;
  eo.num_computers = actors;
  eo.scheduler_workers = actors;
  eo.csr_format = format;
  eo.csr_order = order;
  eo.exec = exec;
  eo.io.backend = backend;
  return Engine::run(graph, program, eo);
}

TEST(CsrV2Engine, MonotoneAppsBitIdenticalAcrossFormatOrderExecBackend) {
  const EdgeList graph = rmat(/*scale=*/9, /*edges=*/8000, /*seed=*/17);
  const BfsProgram bfs(/*root=*/0);
  const ConnectedComponentsProgram cc;
  for (const Program* program :
       std::initializer_list<const Program*>{&bfs, &cc}) {
    auto baseline = run_engine(graph, *program, CsrFormat::kV1,
                               CsrOrder::kNone, ExecMode::kWorklist,
                               IoBackendKind::kMmap, 2);
    ASSERT_TRUE(baseline.is_ok()) << baseline.status().to_string();
    for (const auto format : {CsrFormat::kV1, CsrFormat::kV2}) {
      for (const auto order :
           {CsrOrder::kNone, CsrOrder::kDegree, CsrOrder::kBfs}) {
        if (format == CsrFormat::kV1 && order != CsrOrder::kNone) {
          continue;
        }
        for (const auto exec : {ExecMode::kSweep, ExecMode::kWorklist}) {
          for (const auto backend :
               {IoBackendKind::kMmap, IoBackendKind::kPread}) {
            auto run = run_engine(graph, *program, format, order, exec,
                                  backend, 2);
            ASSERT_TRUE(run.is_ok()) << run.status().to_string();
            EXPECT_EQ(run.value().csr_format, format);
            EXPECT_EQ(run.value().csr_order, order);
            EXPECT_GT(run.value().csr_file_bytes, 0u);
            expect_payloads_equal(run.value().values,
                                  baseline.value().values);
          }
        }
      }
    }
  }
}

TEST(CsrV2Engine, PageRankBitIdenticalAcrossFormatsAtFixedOrder) {
  // Format changes how bytes sit on disk, never which messages fold in
  // which order — at a fixed vertex order and one actor of each kind the
  // float results must be bit-identical, not merely close.
  const EdgeList graph = rmat(/*scale=*/8, /*edges=*/4000, /*seed=*/23);
  const PageRankProgram pagerank(/*iterations=*/10);
  auto v1 = run_engine(graph, pagerank, CsrFormat::kV1, CsrOrder::kNone,
                       ExecMode::kWorklist, IoBackendKind::kMmap, 1);
  ASSERT_TRUE(v1.is_ok()) << v1.status().to_string();
  for (const auto exec : {ExecMode::kSweep, ExecMode::kWorklist}) {
    for (const auto backend :
         {IoBackendKind::kMmap, IoBackendKind::kPread}) {
      auto v2 = run_engine(graph, pagerank, CsrFormat::kV2, CsrOrder::kNone,
                           exec, backend, 1);
      ASSERT_TRUE(v2.is_ok()) << v2.status().to_string();
      expect_payloads_equal(v2.value().values, v1.value().values);
    }
  }
  // Renumbering changes fold order, so floats are near, not identical —
  // but still keyed by original ids (a misapplied inverse permutation
  // would scramble them far past any tolerance).
  for (const auto order : {CsrOrder::kDegree, CsrOrder::kBfs}) {
    auto reordered = run_engine(graph, pagerank, CsrFormat::kV2, order,
                                ExecMode::kWorklist, IoBackendKind::kMmap, 1);
    ASSERT_TRUE(reordered.is_ok()) << reordered.status().to_string();
    expect_float_payloads_near(reordered.value().values, v1.value().values);
  }
}

TEST(CsrV2Engine, RejectsV1WithOrder) {
  EngineOptions eo;
  eo.csr_format = CsrFormat::kV1;
  eo.csr_order = CsrOrder::kDegree;
  const PageRankProgram pagerank(2);
  EXPECT_FALSE(Engine::run(diamond_graph(), pagerank, eo).is_ok());
}

TEST(CsrV2Engine, BytesReadShrinkWithV2) {
  const EdgeList graph = rmat(/*scale=*/10, /*edges=*/30000, /*seed=*/29);
  const PageRankProgram pagerank(/*iterations=*/5);
  auto v1 = run_engine(graph, pagerank, CsrFormat::kV1, CsrOrder::kNone,
                       ExecMode::kSweep, IoBackendKind::kMmap, 2);
  auto v2 = run_engine(graph, pagerank, CsrFormat::kV2, CsrOrder::kNone,
                       ExecMode::kSweep, IoBackendKind::kMmap, 2);
  ASSERT_TRUE(v1.is_ok() && v2.is_ok());
  // The CSR side of bytes_read shrinks with the encoding; the value-scan
  // side is identical, so total fundamental reads must drop.
  EXPECT_LT(v2.value().io.bytes_read, v1.value().io.bytes_read);
  EXPECT_LT(v2.value().csr_file_bytes, v1.value().csr_file_bytes);
}

// --- Checkpoint write-back batching ------------------------------------------

TEST(CsrV2Checkpoint, IntervalBatchesValueFileFlushes) {
  const EdgeList graph = rmat(/*scale=*/7, /*edges=*/2000, /*seed=*/31);
  const PageRankProgram pagerank(/*iterations=*/8);

  EngineOptions every;
  every.checkpoint_each_superstep = true;
  every.checkpoint_interval = 1;
  auto r1 = Engine::run(graph, pagerank, every);
  ASSERT_TRUE(r1.is_ok()) << r1.status().to_string();

  EngineOptions batched = every;
  batched.checkpoint_interval = 4;
  auto r4 = Engine::run(graph, pagerank, batched);
  ASSERT_TRUE(r4.is_ok()) << r4.status().to_string();

  EngineOptions off;
  off.checkpoint_each_superstep = false;
  auto r0 = Engine::run(graph, pagerank, off);
  ASSERT_TRUE(r0.is_ok()) << r0.status().to_string();

  // Same computation either way.
  EXPECT_EQ(r1.value().supersteps, r4.value().supersteps);
  expect_payloads_equal(r4.value().values, r1.value().values);
  expect_payloads_equal(r0.value().values, r1.value().values);

  // Batching must observably cut msync traffic; no checkpointing at all
  // cuts it further (only the engine's own final-flush paths remain).
  EXPECT_LT(r4.value().value_flush_syscalls,
            r1.value().value_flush_syscalls);
  EXPECT_LT(r0.value().value_flush_syscalls,
            r4.value().value_flush_syscalls);
}

// --- Cluster fingerprint -----------------------------------------------------

TEST(CsrV2Cluster, FingerprintCoversFormatAndOrder) {
  const auto fp = [](CsrFormat format, CsrOrder order) {
    return cluster_graph_fingerprint(1000, 5000, 4, "pagerank", format,
                                     order);
  };
  const std::uint64_t v1 = fp(CsrFormat::kV1, CsrOrder::kNone);
  EXPECT_EQ(v1, fp(CsrFormat::kV1, CsrOrder::kNone));  // deterministic
  // A v2 rank, or a renumbered rank, must not shake hands with a v1/none
  // rank: every configuration pair disagrees.
  EXPECT_NE(v1, fp(CsrFormat::kV2, CsrOrder::kNone));
  EXPECT_NE(v1, fp(CsrFormat::kV2, CsrOrder::kDegree));
  EXPECT_NE(fp(CsrFormat::kV2, CsrOrder::kNone),
            fp(CsrFormat::kV2, CsrOrder::kDegree));
  EXPECT_NE(fp(CsrFormat::kV2, CsrOrder::kDegree),
            fp(CsrFormat::kV2, CsrOrder::kBfs));
  // And the pre-existing fields still matter.
  EXPECT_NE(v1, cluster_graph_fingerprint(1001, 5000, 4, "pagerank",
                                          CsrFormat::kV1, CsrOrder::kNone));
  EXPECT_NE(v1, cluster_graph_fingerprint(1000, 5000, 4, "bfs",
                                          CsrFormat::kV1, CsrOrder::kNone));
}

}  // namespace
}  // namespace gpsa
