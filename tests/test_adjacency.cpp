// Tests for the adjacency-graph input format and its streaming
// (sort-free) preprocessing path into the on-disk CSR (§V.B).
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/reference.hpp"
#include "core/engine.hpp"
#include "graph/adjacency.hpp"
#include "graph/csr.hpp"
#include "graph/csr_file.hpp"
#include "graph/generators.hpp"
#include "platform/file_util.hpp"
#include "test_support.hpp"

namespace gpsa {
namespace {

using testing::diamond_graph;
using testing::expect_payloads_equal;

TEST(Adjacency, TextRoundTrip) {
  auto dir = ScratchDir::create("adj");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("g.adj");
  const EdgeList graph = rmat(7, 700, 9);
  ASSERT_TRUE(write_adjacency_text(graph, path).is_ok());
  const auto back = read_adjacency_text(path);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  // Round trip through CSR ordering: compare canonical forms.
  EdgeList a = graph;
  EdgeList b = back.value();
  b.ensure_vertices(a.num_vertices());
  a.canonicalize(/*remove_self_loops=*/false);
  b.canonicalize(/*remove_self_loops=*/false);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(Adjacency, ParsesColonSeparatorAndComments) {
  auto dir = ScratchDir::create("adjc");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("g.adj");
  const char* text =
      "# comment line\n"
      "0: 1 2\n"
      "\n"
      "2 3\n";
  ASSERT_TRUE(write_file(path, text, strlen(text)).is_ok());
  const auto graph = read_adjacency_text(path);
  ASSERT_TRUE(graph.is_ok());
  EXPECT_EQ(graph.value().num_edges(), 3U);
  EXPECT_EQ(graph.value().num_vertices(), 4U);
}

TEST(Adjacency, RejectsGarbage) {
  auto dir = ScratchDir::create("adjbad");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("bad.adj");
  ASSERT_TRUE(write_file(path, "0 one two\n", 10).is_ok());
  const auto r = read_adjacency_text(path);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);
}

class AdjacencyCsrTest : public ::testing::TestWithParam<bool> {};

TEST_P(AdjacencyCsrTest, StreamingPathMatchesSortPath) {
  const bool with_degree = GetParam();
  auto dir = ScratchDir::create("adjcsr");
  ASSERT_TRUE(dir.is_ok());
  const EdgeList graph = rmat(7, 900, 21);
  const std::string adj_path = dir.value().file("g.adj");
  ASSERT_TRUE(write_adjacency_text(graph, adj_path).is_ok());

  // Streaming conversion (input is source-sorted by the writer).
  const std::string streamed_base = dir.value().file("streamed.csr");
  const auto report =
      adjacency_text_to_csr(adj_path, streamed_base, with_degree);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().streamed);
  EXPECT_EQ(report.value().num_edges, graph.num_edges());

  // Reference conversion through the sorting pipeline.
  const std::string sorted_base = dir.value().file("sorted.csr");
  ASSERT_TRUE(
      preprocess_edges_to_csr(graph, sorted_base, with_degree).is_ok());

  const auto streamed = CsrFileReader::open(streamed_base);
  const auto sorted = CsrFileReader::open(sorted_base);
  ASSERT_TRUE(streamed.is_ok());
  ASSERT_TRUE(sorted.is_ok());
  ASSERT_EQ(streamed.value().num_vertices(), sorted.value().num_vertices());
  for (VertexId v = 0; v < sorted.value().num_vertices(); ++v) {
    const auto a = streamed.value().record(v);
    const auto b = sorted.value().record(v);
    ASSERT_EQ(a.out_degree, b.out_degree) << "vertex " << v;
    // Target multisets match (streaming keeps input order).
    std::vector<std::int32_t> at(a.targets.begin(), a.targets.end());
    std::vector<std::int32_t> bt(b.targets.begin(), b.targets.end());
    std::sort(at.begin(), at.end());
    std::sort(bt.begin(), bt.end());
    ASSERT_EQ(at, bt) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(DegreeVariants, AdjacencyCsrTest, ::testing::Bool(),
                         [](const auto& param_info) {
                           return param_info.param ? "WithDegree" : "NoDegree";
                         });

TEST(Adjacency, UnsortedInputFallsBackToSortPath) {
  auto dir = ScratchDir::create("adjun");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("g.adj");
  const char* text = "3 0\n1 2\n0 1\n";  // descending sources
  ASSERT_TRUE(write_file(path, text, strlen(text)).is_ok());
  const std::string base = dir.value().file("g.csr");
  const auto report = adjacency_text_to_csr(path, base, true);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_FALSE(report.value().streamed);
  const auto reader = CsrFileReader::open(base);
  ASSERT_TRUE(reader.is_ok());
  EXPECT_EQ(reader.value().num_edges(), 3U);
  EXPECT_EQ(reader.value().record(3).out_degree, 1U);
}

TEST(Adjacency, TrailingIsolatedDestinations) {
  // Destination 9 beyond the last source must yield empty records.
  auto dir = ScratchDir::create("adjtail");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = dir.value().file("g.adj");
  const char* text = "0 1 9\n1 2\n";
  ASSERT_TRUE(write_file(path, text, strlen(text)).is_ok());
  const std::string base = dir.value().file("g.csr");
  const auto report = adjacency_text_to_csr(path, base, true);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().streamed);
  EXPECT_EQ(report.value().num_vertices, 10U);
  const auto reader = CsrFileReader::open(base);
  ASSERT_TRUE(reader.is_ok());
  EXPECT_EQ(reader.value().record(9).out_degree, 0U);
}

TEST(Adjacency, EngineRunsFromStreamedCsr) {
  auto dir = ScratchDir::create("adjrun");
  ASSERT_TRUE(dir.is_ok());
  const EdgeList graph = diamond_graph();
  const std::string adj_path = dir.value().file("g.adj");
  ASSERT_TRUE(write_adjacency_text(graph, adj_path).is_ok());
  const std::string base = dir.value().file("g.csr");
  ASSERT_TRUE(adjacency_text_to_csr(adj_path, base, true).is_ok());

  const BfsProgram program(0);
  EngineOptions eo;
  eo.num_dispatchers = 2;
  eo.num_computers = 2;
  eo.scheduler_workers = 2;
  eo.work_dir = dir.value().path();
  const auto result = Engine::run_from_csr(base, program, eo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  expect_payloads_equal(result.value().values,
                        oracle_bfs_levels(Csr::from_edges(graph), 0));
}

}  // namespace
}  // namespace gpsa
