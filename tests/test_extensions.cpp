// Tests for the engine extensions beyond the paper's minimum: worker
// exception handling (§V.C), dispatcher-side message combining, and the
// additional vertex programs (multi-source reachability, in-degree).
#include <gtest/gtest.h>

#include <stdexcept>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/degree_count.hpp"
#include "apps/multi_bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/reference.hpp"
#include "core/engine.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "test_support.hpp"

namespace gpsa {
namespace {

using testing::diamond_graph;
using testing::expect_float_payloads_near;
using testing::expect_payloads_equal;

EngineOptions small_options() {
  EngineOptions eo;
  eo.num_dispatchers = 2;
  eo.num_computers = 2;
  eo.scheduler_workers = 2;
  eo.message_batch = 8;
  return eo;
}

// --- Worker exception handling (§V.C) ----------------------------------------

/// Throws from compute() when a poisoned message value arrives.
class PoisonedComputeProgram final : public Program {
 public:
  std::string name() const override { return "poisoned-compute"; }
  InitialState init(VertexId v, VertexId /*n*/) const override {
    return {v, true};
  }
  Payload gen_msg(VertexId /*s*/, VertexId /*d*/, Payload value,
                  std::uint32_t /*deg*/) const override {
    return value;
  }
  Payload first_update(VertexId /*v*/, Payload stored) const override {
    return stored;
  }
  Payload compute(Payload accumulator, Payload message) const override {
    if (message == 3) {  // label of vertex 3 propagating
      throw std::runtime_error("poisoned message");
    }
    return std::min(accumulator, message);
  }
};

/// Throws from gen_msg() for one source vertex.
class PoisonedDispatchProgram final : public Program {
 public:
  std::string name() const override { return "poisoned-dispatch"; }
  InitialState init(VertexId v, VertexId /*n*/) const override {
    return {v, true};
  }
  Payload gen_msg(VertexId src, VertexId /*d*/, Payload value,
                  std::uint32_t /*deg*/) const override {
    if (src == 2) {
      throw std::runtime_error("poisoned source");
    }
    return value;
  }
  Payload first_update(VertexId /*v*/, Payload stored) const override {
    return stored;
  }
  Payload compute(Payload accumulator, Payload message) const override {
    return std::min(accumulator, message);
  }
};

TEST(WorkerFailure, ComputeExceptionSurfacesAsStatus) {
  const EdgeList graph = diamond_graph();
  const PoisonedComputeProgram program;
  const auto result = Engine::run(graph, program, small_options());
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("poisoned message"),
            std::string::npos);
}

TEST(WorkerFailure, DispatchExceptionSurfacesAsStatus) {
  const EdgeList graph = diamond_graph();
  const PoisonedDispatchProgram program;
  const auto result = Engine::run(graph, program, small_options());
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("poisoned source"),
            std::string::npos);
}

TEST(WorkerFailure, EngineRemainsUsableAfterFailure) {
  const EdgeList graph = diamond_graph();
  const PoisonedComputeProgram bad;
  ASSERT_FALSE(Engine::run(graph, bad, small_options()).is_ok());
  // A clean run right after must succeed with correct results.
  const BfsProgram good(0);
  const auto result = Engine::run(graph, good, small_options());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  expect_payloads_equal(result.value().values,
                        oracle_bfs_levels(Csr::from_edges(graph), 0));
}

// --- Message combining --------------------------------------------------------

TEST(Combiner, PreservesResultsAndReducesMessages) {
  // star graph: every leaf sends its label to the hub — maximally
  // combinable traffic.
  const EdgeList graph = star(256);
  const ConnectedComponentsProgram program;

  EngineOptions plain = small_options();
  const auto without = Engine::run(graph, program, plain);
  ASSERT_TRUE(without.is_ok());

  EngineOptions combined = small_options();
  combined.enable_combiner = true;
  const auto with = Engine::run(graph, program, combined);
  ASSERT_TRUE(with.is_ok());

  expect_payloads_equal(with.value().values, without.value().values);
  EXPECT_LT(with.value().total_messages, without.value().total_messages);
}

TEST(Combiner, PageRankSumsCombineExactlyEnough) {
  const EdgeList graph = rmat(8, 3000, 31);
  const PageRankProgram program(5);
  EngineOptions combined = small_options();
  combined.enable_combiner = true;
  const auto with = Engine::run(graph, program, combined);
  ASSERT_TRUE(with.is_ok());
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_float_payloads_near(with.value().values, ref.values);
}

TEST(Combiner, MonotoneAppsMatchReferenceWithCombining) {
  const EdgeList graph = rmat(8, 2500, 37);
  EngineOptions combined = small_options();
  combined.enable_combiner = true;
  {
    const BfsProgram program(0);
    const auto r = Engine::run(graph, program, combined);
    ASSERT_TRUE(r.is_ok());
    expect_payloads_equal(r.value().values,
                          reference_run(Csr::from_edges(graph), program).values);
  }
  {
    const ConnectedComponentsProgram program;
    const auto r = Engine::run(graph, program, combined);
    ASSERT_TRUE(r.is_ok());
    expect_payloads_equal(r.value().values,
                          reference_run(Csr::from_edges(graph), program).values);
  }
}

// --- Multi-source reachability ------------------------------------------------

TEST(MultiBfs, MatchesPerSourceOracles) {
  const EdgeList graph = rmat(8, 1500, 41);
  const Csr csr = Csr::from_edges(graph);
  const std::vector<VertexId> sources = {0, 7, 100, 200};
  const MultiSourceReachabilityProgram program(sources);
  const auto result = Engine::run(graph, program, small_options());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  // Expected mask: OR over per-source BFS reachability.
  std::vector<Payload> expected(csr.num_vertices(), 0);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto levels = oracle_bfs_levels(csr, sources[i]);
    for (VertexId v = 0; v < csr.num_vertices(); ++v) {
      if (levels[v] != kPayloadInfinity) {
        expected[v] |= Payload{1} << i;
      }
    }
  }
  expect_payloads_equal(result.value().values, expected);
}

TEST(MultiBfs, AgreesWithReferenceExecutor) {
  const EdgeList graph = grid(12, 13);
  const MultiSourceReachabilityProgram program({0, 50, 155});
  const auto result = Engine::run(graph, program, small_options());
  ASSERT_TRUE(result.is_ok());
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  expect_payloads_equal(result.value().values, ref.values);
}

TEST(MultiBfs, SingleSourceEqualsBfsReachability) {
  const EdgeList graph = binary_tree(127);
  const MultiSourceReachabilityProgram program({0});
  const auto result = Engine::run(graph, program, small_options());
  ASSERT_TRUE(result.is_ok());
  const auto levels = oracle_bfs_levels(Csr::from_edges(graph), 0);
  for (VertexId v = 0; v < levels.size(); ++v) {
    EXPECT_EQ(result.value().values[v] != 0, levels[v] != kPayloadInfinity)
        << "vertex " << v;
  }
}

// --- In-degree ----------------------------------------------------------------

TEST(InDegree, MatchesTransposeDegrees) {
  const EdgeList graph = rmat(8, 2000, 43);
  const InDegreeProgram program;
  const auto result = Engine::run(graph, program, small_options());
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().supersteps, 1U);
  const Csr transpose = Csr::from_edges(graph).transpose();
  for (VertexId v = 0; v < transpose.num_vertices(); ++v) {
    ASSERT_EQ(result.value().values[v], transpose.out_degree(v))
        << "vertex " << v;
  }
}

TEST(InDegree, CombinerStillCountsExactly) {
  const EdgeList graph = star(64);
  const InDegreeProgram program;
  EngineOptions combined = small_options();
  combined.enable_combiner = true;
  const auto result = Engine::run(graph, program, combined);
  ASSERT_TRUE(result.is_ok());
  // Hub receives one edge from each leaf.
  EXPECT_EQ(result.value().values[0], 63U);
  for (VertexId v = 1; v < 64; ++v) {
    ASSERT_EQ(result.value().values[v], 1U);
  }
}

}  // namespace
}  // namespace gpsa
