// Unit tests for the util substrate: status/result, config, stats, rng,
// and the lock-free queues (including multi-producer stress).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/config.hpp"
#include "util/mpsc_queue.hpp"
#include "util/rng.hpp"
#include "util/spsc_ring.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"

namespace gpsa {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s = io_error("disk on fire");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.to_string(), "IO_ERROR: disk on fire");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsStatus) {
  Result<int> r(not_found("nope"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, AssignOrReturnPropagates) {
  auto inner = []() -> Result<int> { return invalid_argument("bad"); };
  auto outer = [&]() -> Result<int> {
    GPSA_ASSIGN_OR_RETURN(const int v, inner());
    return v + 1;
  };
  const auto r = outer();
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// --- Config ------------------------------------------------------------------

TEST(Config, ParsesArgs) {
  const char* argv[] = {"prog", "--alpha=3", "--flag", "pos1", "--name=x y"};
  const auto r = Config::from_args(5, argv);
  ASSERT_TRUE(r.is_ok());
  const Config& c = r.value();
  EXPECT_EQ(c.get_int("alpha", 0), 3);
  EXPECT_TRUE(c.get_bool("flag", false));
  EXPECT_EQ(c.get_string("name", ""), "x y");
  ASSERT_EQ(c.positional().size(), 1U);
  EXPECT_EQ(c.positional()[0], "pos1");
}

TEST(Config, DefaultsWhenMissingOrMalformed) {
  Config c;
  c.set("bad_int", "12x");
  c.set("bad_bool", "maybe");
  EXPECT_EQ(c.get_int("bad_int", -1), -1);
  EXPECT_TRUE(c.get_bool("bad_bool", true));
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("missing", 2.5), 2.5);
}

TEST(Config, RejectsEmptyKey) {
  Config c;
  EXPECT_FALSE(c.set_entry("=v").is_ok());
  EXPECT_FALSE(c.set_entry("").is_ok());
}

// --- Stats -------------------------------------------------------------------

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeMatchesCombined) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
}

TEST(Summary, Percentiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) {
    xs.push_back(i);
  }
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100U);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
}

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  Rng c(124);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next_u64();
    EXPECT_EQ(x, b.next_u64());
    any_diff |= (x != c.next_u64());
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 100'000; ++i) {
    const auto x = rng.next_below(10);
    ASSERT_LT(x, 10U);
    ++histogram[x];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 9'000);
    EXPECT_LT(count, 11'000);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

// --- MpscQueue ---------------------------------------------------------------

TEST(MpscQueue, FifoSingleProducer) {
  MpscQueue<int> q;
  for (int i = 0; i < 100; ++i) {
    q.push(i);
  }
  for (int i = 0; i < 100; ++i) {
    const auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpscQueue, ApproxSizeTracksContents) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.approx_empty());
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.approx_size(), 2U);
  (void)q.try_pop();
  EXPECT_EQ(q.approx_size(), 1U);
}

TEST(MpscQueue, MultiProducerDeliversEverythingInPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20'000;
  MpscQueue<std::pair<int, int>> q;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push({p, i});
      }
    });
  }
  std::vector<int> next_expected(kProducers, 0);
  for (int received = 0; received < kProducers * kPerProducer; ++received) {
    const auto [p, i] = q.pop();  // blocking
    ASSERT_EQ(i, next_expected[p]) << "producer " << p;
    ++next_expected[p];
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_TRUE(q.approx_empty());
}

TEST(MpscQueue, BlockingPopWakesOnPush) {
  MpscQueue<int> q;
  std::atomic<int> got{-1};
  std::thread consumer([&] { got.store(q.pop()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), -1);
  q.push(99);
  consumer.join();
  EXPECT_EQ(got.load(), 99);
}

TEST(MpscQueue, MoveOnlyPayloads) {
  MpscQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(5));
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

// --- SpscRing ----------------------------------------------------------------

TEST(SpscRing, CapacityRoundedToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8U);
}

TEST(SpscRing, FullAndEmptyConditions) {
  SpscRing<int> ring(2);
  EXPECT_FALSE(ring.try_pop().has_value());
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));  // full at capacity 2
  EXPECT_EQ(*ring.try_pop(), 1);
  EXPECT_TRUE(ring.try_push(3));
  EXPECT_EQ(*ring.try_pop(), 2);
  EXPECT_EQ(*ring.try_pop(), 3);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, ConcurrentStreamPreservesOrder) {
  SpscRing<int> ring(64);
  constexpr int kTotal = 100'000;
  std::thread producer([&] {
    for (int i = 0; i < kTotal;) {
      if (ring.try_push(i)) {
        ++i;
      }
    }
  });
  for (int expected = 0; expected < kTotal;) {
    if (auto v = ring.try_pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
}

}  // namespace
}  // namespace gpsa
