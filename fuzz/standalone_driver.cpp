// Corpus-replay driver for toolchains without -fsanitize=fuzzer (gcc).
//
// Feeds every file passed on the command line — in CI and ctest, the
// checked-in seed corpus — through LLVMFuzzerTestOneInput, so the
// harness itself stays covered by the ordinary test matrix (including
// the sanitizer configurations) even where libFuzzer cannot link.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "platform/file_util.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s corpus-file...\n", argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    auto bytes = gpsa::read_file(argv[i]);
    if (!bytes.is_ok()) {
      std::fprintf(stderr, "skip %s: %s\n", argv[i],
                   bytes.status().to_string().c_str());
      continue;
    }
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.value().data()),
        bytes.value().size());
    ++replayed;
  }
  std::printf("replayed %d corpus file(s)\n", replayed);
  return replayed > 0 ? 0 : 1;
}
