// libFuzzer harness for the edge-list text reader (EdgeList::read_text),
// the third untrusted input grammar next to the CSR pair and adjacency
// text. Crash oracle plus three invariants layered on top:
//
//   1. Text round trip: whatever read_text accepts, write_text must
//      re-serialize to bytes read_text accepts again with identical
//      vertex/edge totals and identical edges.
//   2. Binary round trip: write_binary -> read_binary of the parsed list
//      is an identity (this is the path the bench harness caches graphs
//      through).
//   3. canonicalize() is idempotent: a second call must not change the
//      edge vector again.
//
// Digit runs are capped as in the sibling harnesses: huge *valid* ids are
// rejected by the parser's kMaxParsedVertexId bound anyway, but capping
// keeps mutation pressure on delimiter/comment/overflow handling instead
// of on from_chars' overflow path alone.
#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/edge_list.hpp"
#include "platform/file_util.hpp"
#include "util/check.hpp"

namespace {

// Ids < 100'000; all non-digit bytes pass through untouched.
std::string cap_digit_runs(const std::uint8_t* data, std::size_t size) {
  std::string out;
  out.reserve(size);
  std::size_t run = 0;
  for (std::size_t i = 0; i < size; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c >= '0' && c <= '9') {
      if (++run > 5) {
        continue;
      }
    } else {
      run = 0;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  auto dir = gpsa::ScratchDir::create("fuzz_edge_list");
  if (!dir.is_ok()) {
    return 0;
  }
  const std::string text = cap_digit_runs(data, size);
  const std::string text_path = dir.value().file("input.el");
  if (!gpsa::write_file(text_path, text.data(), text.size()).ok()) {
    return 0;
  }

  auto parsed = gpsa::EdgeList::read_text(text_path);
  if (!parsed.is_ok()) {
    return 0;
  }
  gpsa::EdgeList& graph = parsed.value();

  // Text round trip: totals and edges are invariant.
  const std::string round_path = dir.value().file("round.el");
  GPSA_CHECK(graph.write_text(round_path).is_ok());
  auto reparsed = gpsa::EdgeList::read_text(round_path);
  GPSA_CHECK(reparsed.is_ok());
  GPSA_CHECK(reparsed.value().num_edges() == graph.num_edges());
  GPSA_CHECK(reparsed.value().edges() == graph.edges());
  // write_text's header comment declares the vertex bound, but read_text
  // derives the bound from edges alone, so isolated trailing vertices
  // (ensure_vertices) may shrink; parsed lists never have those.
  GPSA_CHECK(reparsed.value().num_vertices() == graph.num_vertices());

  // Binary round trip is an identity on the parsed list.
  const std::string bin_path = dir.value().file("round.bin");
  GPSA_CHECK(graph.write_binary(bin_path).is_ok());
  auto rebinary = gpsa::EdgeList::read_binary(bin_path);
  GPSA_CHECK(rebinary.is_ok());
  GPSA_CHECK(rebinary.value().num_vertices() == graph.num_vertices());
  GPSA_CHECK(rebinary.value().edges() == graph.edges());

  // canonicalize is idempotent.
  graph.canonicalize();
  const auto once = graph.edges();
  const auto vertices_once = graph.num_vertices();
  graph.canonicalize();
  GPSA_CHECK(graph.edges() == once);
  GPSA_CHECK(graph.num_vertices() == vertices_once);
  return 0;
}
