// Dedicated libFuzzer harness for the adjacency-text input path.
//
// fuzz_csr_parser multiplexes both untrusted formats behind a selector
// byte, which halves the fuzzer's effective throughput on either one and
// makes text-shaped mutations start from a binary-shaped corpus. This
// harness feeds the *whole* input to the text parser, so the corpus and
// mutation pressure stay in one grammar, and it layers a differential
// oracle on top of the crash oracle:
//
//   1. read_adjacency_text (whole-file parse into an edge list) and
//      adjacency_text_to_csr (streaming preprocessor, both with_degree
//      variants) run over the same bytes;
//   2. whenever both accept, their vertex/edge totals must agree — the
//      two parsers share a line tokenizer but diverge in everything
//      after it (sorted streaming vs. sort fallback), so a disagreement
//      is a real bug, not fuzzer noise;
//   3. every CSR pair the preprocessor emits must pass CsrFileReader's
//      full structural validation, and a re-serialization of the parsed
//      edge list (write_adjacency_text) must parse back to identical
//      totals.
//
// Digit runs are capped exactly as in fuzz_csr_parser: huge *valid*
// vertex ids command multi-gigabyte preprocessor output (one empty
// record per omitted id), an OOM/disk DoS that would drown the memory
// bugs this harness hunts.
#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/adjacency.hpp"
#include "graph/csr_file.hpp"
#include "graph/edge_list.hpp"
#include "platform/file_util.hpp"
#include "util/check.hpp"

namespace {

// Ids < 100'000; all non-digit bytes pass through untouched so the
// delimiter/comment/overflow handling still sees arbitrary input.
std::string cap_digit_runs(const std::uint8_t* data, std::size_t size) {
  std::string out;
  out.reserve(size);
  std::size_t run = 0;
  for (std::size_t i = 0; i < size; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c >= '0' && c <= '9') {
      if (++run > 5) {
        continue;
      }
    } else {
      run = 0;
    }
    out.push_back(c);
  }
  return out;
}

void check_csr_pair(const std::string& csr_base,
                    const gpsa::AdjacencyToCsrReport& report) {
  auto reader = gpsa::CsrFileReader::open(csr_base);
  GPSA_CHECK(reader.is_ok());  // preprocessor output must always validate
  GPSA_CHECK(reader.value().num_vertices() == report.num_vertices);
  GPSA_CHECK(reader.value().num_edges() == report.num_edges);
  std::uint64_t checksum = 0;
  for (gpsa::VertexId v = 0; v < reader.value().num_vertices(); ++v) {
    const auto record = reader.value().record(v);
    checksum += record.out_degree;
    for (const std::int32_t target : record.targets) {
      checksum += static_cast<std::uint64_t>(target);
    }
  }
  volatile std::uint64_t sink = checksum;
  (void)sink;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  auto dir = gpsa::ScratchDir::create("fuzz_adjacency_text");
  if (!dir.is_ok()) {
    return 0;
  }
  const std::string text = cap_digit_runs(data, size);
  const std::string text_path = dir.value().file("input.adj");
  if (!gpsa::write_file(text_path, text.data(), text.size()).ok()) {
    return 0;
  }

  auto parsed = gpsa::read_adjacency_text(text_path);

  for (const bool with_degree : {false, true}) {
    const std::string csr_base =
        dir.value().file(with_degree ? "deg.csr" : "nodeg.csr");
    auto report = gpsa::adjacency_text_to_csr(text_path, csr_base,
                                              with_degree);
    if (!report.is_ok()) {
      continue;
    }
    check_csr_pair(csr_base, report.value());
    // Differential oracle: the streaming preprocessor and the whole-file
    // parser must agree on what the bytes mean. The preprocessor rejects
    // edge-free inputs the parser accepts, but never the reverse.
    GPSA_CHECK(parsed.is_ok());
    GPSA_CHECK(parsed.value().num_vertices() == report.value().num_vertices);
    GPSA_CHECK(parsed.value().num_edges() == report.value().num_edges);
  }

  if (parsed.is_ok() && parsed.value().num_edges() > 0) {
    // Round trip: re-serialize and re-parse; totals are invariant.
    const std::string round_path = dir.value().file("round.adj");
    if (gpsa::write_adjacency_text(parsed.value(), round_path).ok()) {
      auto reparsed = gpsa::read_adjacency_text(round_path);
      GPSA_CHECK(reparsed.is_ok());
      GPSA_CHECK(reparsed.value().num_vertices() ==
                 parsed.value().num_vertices());
      GPSA_CHECK(reparsed.value().num_edges() == parsed.value().num_edges());
    }
  }
  return 0;
}
