// libFuzzer harness for the v2 CSR format (graph/csr_v2.hpp):
//
//   selector byte even -> differential oracle: the payload is decoded
//     into a small edge list, written as a v1 file, converted to v2 with
//     convert_csr_file (order from selector bits 2-3), and both files are
//     read back. Every vertex's target multiset must agree between the
//     two readers after translating the v2 file's ids back through its
//     permutation — any divergence is CHECKed, a real codec bug;
//   selector byte odd  -> forged v2 file pair: the payload is split into
//     entry body, index file, and perm file by two 4-byte length
//     prefixes, stapled behind a valid-looking v2 header, and
//     CsrFileReader::open must classify the result as valid or corrupt
//     without faulting. The raw payload is also fed straight through
//     decode_csr_v2_record_checked, the layer that must reject truncated
//     varints, >5-byte groups, gap overflow, and non-ascending targets
//     without UB.
//
// Built as a real fuzz target when the toolchain has -fsanitize=fuzzer
// (CI's clang leg); otherwise fuzz/standalone_driver.cpp replays the
// seed corpus through the same entry point as a plain ctest binary.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "graph/csr_file.hpp"
#include "graph/csr_v2.hpp"
#include "graph/edge_list.hpp"
#include "platform/file_util.hpp"
#include "util/check.hpp"

namespace {

using namespace gpsa;

/// Sorted original-id target list of `v` as seen through `reader`:
/// identity for unrenumbered files, mapped through the permutation for
/// renumbered ones (reader ids are new ids, target entries too).
std::vector<std::int32_t> original_targets(const CsrFileReader& reader,
                                           VertexId original_v,
                                           std::span<const VertexId> perm,
                                           std::span<const VertexId> inverse) {
  const VertexId v = perm.empty() ? original_v : inverse[original_v];
  const CsrFileReader::VertexRecord record = reader.record(v);
  std::vector<std::int32_t> targets(record.targets.begin(),
                                    record.targets.end());
  if (!perm.empty()) {
    for (std::int32_t& t : targets) {
      t = static_cast<std::int32_t>(perm[static_cast<VertexId>(t)]);
    }
  }
  std::sort(targets.begin(), targets.end());
  return targets;
}

void fuzz_differential(const ScratchDir& dir, const std::uint8_t* data,
                       std::size_t size, CsrOrder order) {
  if (size < 1) {
    return;
  }
  const VertexId n = static_cast<VertexId>(data[0] % 32) + 1;
  EdgeList edges;
  edges.ensure_vertices(n);
  for (std::size_t i = 1; i + 1 < size; i += 2) {
    edges.add_edge(static_cast<VertexId>(data[i] % n),
                   static_cast<VertexId>(data[i + 1] % n));
  }
  edges.canonicalize();

  const std::string v1_base = dir.file("diff.v1.csr");
  const std::string v2_base = dir.file("diff.v2.csr");
  if (!preprocess_edges_to_csr(edges, v1_base, /*with_degree=*/true).is_ok()) {
    return;
  }
  // Conversion of a file the writer just produced must succeed, and both
  // sides must reopen: failures here are real bugs, not fuzz noise.
  GPSA_CHECK(convert_csr_file(v1_base, v2_base, CsrFormat::kV2, order,
                              /*with_degree=*/true)
                 .is_ok());
  auto v1_or = CsrFileReader::open(v1_base);
  auto v2_or = CsrFileReader::open(v2_base);
  GPSA_CHECK(v1_or.is_ok() && v2_or.is_ok());
  const CsrFileReader& v1 = v1_or.value();
  const CsrFileReader& v2 = v2_or.value();

  GPSA_CHECK(v1.num_vertices() == v2.num_vertices());
  GPSA_CHECK(v1.num_edges() == v2.num_edges());
  const std::span<const VertexId> perm = v2.permutation();
  std::vector<VertexId> inverse(perm.empty() ? 0 : v2.num_vertices());
  for (VertexId nv = 0; nv < static_cast<VertexId>(perm.size()); ++nv) {
    inverse[perm[nv]] = nv;
  }
  for (VertexId ov = 0; ov < v1.num_vertices(); ++ov) {
    const std::vector<std::int32_t> from_v1 =
        original_targets(v1, ov, /*perm=*/{}, /*inverse=*/{});
    const std::vector<std::int32_t> from_v2 =
        original_targets(v2, ov, perm, inverse);
    GPSA_CHECK(from_v1 == from_v2);
  }
}

void fuzz_forged_v2(const ScratchDir& dir, const std::uint8_t* data,
                    std::size_t size) {
  // Two 4-byte length prefixes carve the payload into body / index / perm
  // so the fuzzer controls all three files and their relative sizes. The
  // header is mostly well-formed (v2 magic/version) to aim mutations past
  // the cheap early-outs; num_vertices/num_edges/flags come from the
  // payload so the cross-field checks get exercised too.
  if (size < 20) {
    return;
  }
  std::uint32_t body_len = 0;
  std::uint32_t idx_len = 0;
  std::memcpy(&body_len, data, 4);
  std::memcpy(&idx_len, data + 4, 4);
  CsrFileHeader header{};
  header.magic = CsrFileHeader::kMagic;
  header.version = CsrFileHeader::kVersionV2;
  std::memcpy(&header.flags, data + 8, 4);
  std::memcpy(&header.num_vertices, data + 12, 4);
  header.num_vertices %= 4096;  // bound the offsets the reader walks
  std::memcpy(&header.num_edges, data + 16, 4);
  data += 20;
  size -= 20;
  body_len = static_cast<std::uint32_t>(
      std::min<std::size_t>(body_len, size));
  idx_len = static_cast<std::uint32_t>(
      std::min<std::size_t>(idx_len, size - body_len));
  header.num_entries = body_len;

  std::vector<std::uint8_t> entry_file(sizeof(CsrFileHeader) + body_len);
  std::memcpy(entry_file.data(), &header, sizeof(header));
  std::memcpy(entry_file.data() + sizeof(header), data, body_len);

  const std::string base = dir.file("forged.csr");
  if (!write_file(base, entry_file.data(), entry_file.size()).ok() ||
      !write_file(base + ".idx", data + body_len, idx_len).ok() ||
      !write_file(base + ".perm", data + body_len + idx_len,
                  size - body_len - idx_len)
           .ok()) {
    return;
  }
  auto reader = CsrFileReader::open(base);
  if (!reader.is_ok()) {
    return;
  }
  // Survived validation: dereference every record so the spans and the
  // fast decoder actually run over the accepted bytes.
  std::uint64_t checksum = 0;
  for (VertexId v = 0; v < reader.value().num_vertices(); ++v) {
    const auto record = reader.value().record(v);
    checksum += record.out_degree;
    for (const std::int32_t target : record.targets) {
      checksum += static_cast<std::uint64_t>(target);
    }
  }
  volatile std::uint64_t sink = checksum;
  (void)sink;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) {
    return 0;
  }
  const std::uint8_t selector = data[0];

  // Always: the checked record decoder over the raw payload, with a few
  // num_vertices bounds. Rejection is fine; faulting is the bug.
  std::vector<std::int32_t> decoded;
  for (const gpsa::VertexId n : {1U, 7U, 300U, 0x7fffffffU}) {
    decoded.clear();
    (void)gpsa::decode_csr_v2_record_checked({data + 1, size - 1}, n,
                                             decoded);
  }

  auto dir = gpsa::ScratchDir::create("fuzz_csr_v2");
  if (!dir.is_ok()) {
    return 0;
  }
  if ((selector & 1) == 0) {
    const auto order = static_cast<gpsa::CsrOrder>((selector >> 2) % 3);
    fuzz_differential(dir.value(), data + 1, size - 1, order);
  } else {
    fuzz_forged_v2(dir.value(), data + 1, size - 1);
  }
  return 0;
}
