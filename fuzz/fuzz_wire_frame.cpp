// libFuzzer harness for the cluster wire-frame codec (src/net/wire_frame),
// the first *network*-untrusted input grammar: every byte a peer sends
// crosses FrameDecoder before anything else trusts it. The first input
// byte selects the mode:
//
//   even — raw decode robustness: the remaining bytes stream through a
//     FrameDecoder in input-derived chunk sizes. The decoder must never
//     crash, never hand out a frame with an out-of-bounds payload, and —
//     the stickiness oracle — never produce another frame after it
//     poisoned itself.
//
//   odd — encode->decode differential round trip: the input picks a frame
//     type, version skew, seq, and payload; append_frame serializes it
//     and the decoder must reproduce header and payload *exactly* (or,
//     when the version was skewed away from the negotiated one, reject).
//     Typed control payloads that parse are re-encoded and parsed again:
//     decode(encode(decode(x))) must be the identity.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "net/wire_frame.hpp"
#include "util/check.hpp"

namespace {

using gpsa::Frame;
using gpsa::FrameDecoder;
using gpsa::FrameType;

void fuzz_raw_decode(const std::uint8_t* data, std::size_t size) {
  FrameDecoder decoder;
  Frame frame;
  bool poisoned = false;
  std::size_t at = 0;
  // Chunk sizes come from the input itself so the fuzzer controls the
  // fragmentation pattern (1-byte trickles to whole-buffer feeds).
  std::size_t chunk_seed = 1;
  while (at < size) {
    const std::size_t chunk =
        1 + (data[at] + chunk_seed++) % std::min<std::size_t>(64, size - at);
    decoder.feed(data + at, std::min(chunk, size - at));
    at += chunk;
    for (;;) {
      auto produced = decoder.next(frame);
      if (!produced.is_ok()) {
        poisoned = true;
        break;
      }
      if (!produced.value()) {
        break;
      }
      // A decoded frame obeys the framing invariants.
      GPSA_CHECK(!poisoned);  // sticky poisoning must not un-stick
      GPSA_CHECK(frame.payload.size() <= gpsa::kMaxFramePayload);
      GPSA_CHECK(frame.payload.size() == frame.header.payload_len);
      GPSA_CHECK(gpsa::frame_type_known(
          static_cast<std::uint16_t>(frame.header.type)));
    }
    if (poisoned) {
      // Stickiness: no amount of further (even pristine) input may yield
      // another frame or a success from next().
      std::vector<std::uint8_t> good;
      gpsa::append_frame(good, gpsa::kWireVersionMax, FrameType::kHello, 0, 0,
                         nullptr, 0);
      decoder.feed(good.data(), good.size());
      GPSA_CHECK(!decoder.next(frame).is_ok());
      return;
    }
  }
}

void roundtrip_control_payload(const Frame& frame) {
  switch (frame.header.type) {
    case FrameType::kHello: {
      auto pl = gpsa::HelloPayload::decode(frame.payload);
      if (pl.is_ok()) {
        auto again = gpsa::HelloPayload::decode(pl.value().encode());
        GPSA_CHECK(again.is_ok());
        GPSA_CHECK(again.value().version_min == pl.value().version_min);
        GPSA_CHECK(again.value().version_max == pl.value().version_max);
        GPSA_CHECK(again.value().rank == pl.value().rank);
        GPSA_CHECK(again.value().ranks == pl.value().ranks);
        GPSA_CHECK(again.value().graph_fingerprint ==
                   pl.value().graph_fingerprint);
      }
      break;
    }
    case FrameType::kEndOfSuperstep: {
      auto pl = gpsa::EndOfSuperstepPayload::decode(frame.payload);
      if (pl.is_ok()) {
        GPSA_CHECK(pl.value().encode() == frame.payload);
      }
      break;
    }
    case FrameType::kSyncRequest: {
      auto pl = gpsa::SyncRequestPayload::decode(frame.payload);
      if (pl.is_ok()) {
        GPSA_CHECK(pl.value().encode() == frame.payload);
      }
      break;
    }
    case FrameType::kSyncRelease: {
      auto pl = gpsa::SyncReleasePayload::decode(frame.payload);
      if (pl.is_ok()) {
        GPSA_CHECK(pl.value().encode() == frame.payload);
      }
      break;
    }
    case FrameType::kValues: {
      auto pl = gpsa::ValuesPayload::decode(frame.payload);
      if (pl.is_ok()) {
        GPSA_CHECK(pl.value().encode() == frame.payload);
      }
      break;
    }
    default:
      break;
  }
}

void fuzz_encode_decode(const std::uint8_t* data, std::size_t size) {
  if (size < 8) {
    return;
  }
  static constexpr FrameType kTypes[] = {
      FrameType::kHello,       FrameType::kHelloAck,
      FrameType::kBatch,       FrameType::kEndOfSuperstep,
      FrameType::kSyncRequest, FrameType::kSyncRelease,
      FrameType::kValues,      FrameType::kAbort,
  };
  const FrameType type = kTypes[data[0] % (sizeof(kTypes) / sizeof(kTypes[0]))];
  const bool skew_version = (data[1] & 1) != 0;
  const std::uint16_t version =
      skew_version ? gpsa::kWireVersionMax + 1 + (data[1] >> 1)
                   : gpsa::kWireVersionMax;
  const std::uint16_t src_rank = data[2];
  const std::uint32_t seq = gpsa::get_u32(data + 3);
  const std::uint8_t* payload = data + 8;
  const std::size_t payload_len = size - 8;

  std::vector<std::uint8_t> wire;
  gpsa::append_frame(wire, version, type, src_rank, seq, payload, payload_len);

  FrameDecoder decoder;  // negotiated version: kWireVersionMax
  // Split the feed at an input-derived point to cover the resume path.
  const std::size_t split = gpsa::get_u16(data + 1) % (wire.size() + 1);
  decoder.feed(wire.data(), split);
  Frame frame;
  auto early = decoder.next(frame);
  if (!early.is_ok()) {
    // Only a skewed version may be rejected, and only once the header is
    // fully buffered.
    GPSA_CHECK(skew_version && split >= gpsa::kFrameHeaderSize);
    return;
  }
  GPSA_CHECK(!early.value() || split == wire.size());
  if (!early.value()) {
    decoder.feed(wire.data() + split, wire.size() - split);
  }
  auto produced = early.value() ? std::move(early) : decoder.next(frame);
  if (skew_version) {
    // A frame not carrying the negotiated version must be rejected.
    GPSA_CHECK(!produced.is_ok());
    return;
  }
  GPSA_CHECK(produced.is_ok() && produced.value());
  GPSA_CHECK(frame.header.version == version);
  GPSA_CHECK(frame.header.type == type);
  GPSA_CHECK(frame.header.src_rank == src_rank);
  GPSA_CHECK(frame.header.seq == seq);
  GPSA_CHECK(frame.payload.size() == payload_len);
  GPSA_CHECK(payload_len == 0 ||
             std::memcmp(frame.payload.data(), payload, payload_len) == 0);
  roundtrip_control_payload(frame);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) {
    return 0;
  }
  if ((data[0] & 1) == 0) {
    fuzz_raw_decode(data + 1, size - 1);
  } else {
    fuzz_encode_decode(data + 1, size - 1);
  }
  return 0;
}
