0 1
1 2
# comment
% matlab comment
2 0
