1 two
