# gpsa edge list: 4 vertices, 3 edges
0	1
1	2
2	3
