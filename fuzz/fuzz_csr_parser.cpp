// libFuzzer harness for the two untrusted graph input paths:
//
//   selector byte even -> adjacency text: read_adjacency_text plus the
//     streaming adjacency_text_to_csr preprocessor (with_degree from
//     selector bit 1), then CsrFileReader over whatever the preprocessor
//     produced — the full text -> binary -> mmap round trip;
//   selector byte odd  -> raw CSR file pair: the payload is split into
//     an entry file and an index file by a 4-byte length prefix, and
//     CsrFileReader::open must classify it as valid or corrupt without
//     faulting. On success every record is decoded and folded into a
//     checksum so the spans are actually dereferenced.
//
// The harness byte-limits runs of ASCII digits in the text path: vertex
// ids scale the preprocessor's output file (one empty record per omitted
// id), so an unbounded id would let a 10-byte input command a
// multi-gigabyte write — an OOM/disk DoS the fuzzer would report instead
// of the memory bugs this harness hunts.
//
// Built as a real fuzz target when the toolchain has -fsanitize=fuzzer
// (CI's clang leg); otherwise fuzz/standalone_driver.cpp replays the
// seed corpus through the same entry point as a plain ctest binary.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "graph/adjacency.hpp"
#include "graph/csr_file.hpp"
#include "platform/file_util.hpp"

namespace {

// Caps every run of consecutive digits at 5 characters (ids < 100'000),
// preserving all other bytes so delimiter/comment/overflow handling still
// sees arbitrary input. from_chars overflow is covered by the retained
// possibility of 5-digit-times-many tokens; huge *valid* ids are the one
// shape excluded, by design.
std::string cap_digit_runs(const std::uint8_t* data, std::size_t size) {
  std::string out;
  out.reserve(size);
  std::size_t run = 0;
  for (std::size_t i = 0; i < size; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c >= '0' && c <= '9') {
      if (++run > 5) {
        continue;
      }
    } else {
      run = 0;
    }
    out.push_back(c);
  }
  return out;
}

void fuzz_adjacency_text(const gpsa::ScratchDir& dir,
                         const std::uint8_t* data, std::size_t size,
                         bool with_degree) {
  const std::string text = cap_digit_runs(data, size);
  const std::string text_path = dir.file("input.adj");
  if (!gpsa::write_file(text_path, text.data(), text.size()).ok()) {
    return;
  }

  // Whole-file path: parse into an edge list. Outcome (ok or corrupt) is
  // irrelevant; surviving ASan/UBSan is the assertion.
  auto parsed = gpsa::read_adjacency_text(text_path);
  if (parsed.is_ok()) {
    volatile std::uint64_t sink = parsed.value().num_edges();
    (void)sink;
  }

  // Streaming path: text -> CSR file pair, then mmap the result back in.
  // A file the preprocessor accepted must also pass the reader's full
  // structural validation — a mismatch is a real bug, so it is CHECKed.
  const std::string csr_base = dir.file("out.csr");
  auto report = gpsa::adjacency_text_to_csr(text_path, csr_base,
                                            with_degree);
  if (report.is_ok()) {
    auto reader = gpsa::CsrFileReader::open(csr_base);
    GPSA_CHECK(reader.is_ok());
    std::uint64_t checksum = 0;
    for (gpsa::VertexId v = 0; v < reader.value().num_vertices(); ++v) {
      const auto record = reader.value().record(v);
      checksum += record.out_degree;
      for (const std::int32_t target : record.targets) {
        checksum += static_cast<std::uint64_t>(target);
      }
    }
    volatile std::uint64_t sink = checksum;
    (void)sink;
  }
}

void fuzz_csr_binary(const gpsa::ScratchDir& dir, const std::uint8_t* data,
                     std::size_t size) {
  // First 4 bytes: little-endian byte length of the entry file (clamped
  // to the payload); the rest is the index file. Lets the fuzzer control
  // both files of the pair independently, including their relative sizes.
  if (size < 4) {
    return;
  }
  std::uint32_t entry_len = 0;
  std::memcpy(&entry_len, data, 4);
  data += 4;
  size -= 4;
  if (entry_len > size) {
    entry_len = static_cast<std::uint32_t>(size);
  }

  const std::string base = dir.file("fuzz.csr");
  if (!gpsa::write_file(base, data, entry_len).ok() ||
      !gpsa::write_file(base + ".idx", data + entry_len, size - entry_len)
           .ok()) {
    return;
  }
  auto reader = gpsa::CsrFileReader::open(base);
  if (!reader.is_ok()) {
    return;
  }
  std::uint64_t checksum = 0;
  for (gpsa::VertexId v = 0; v < reader.value().num_vertices(); ++v) {
    const auto record = reader.value().record(v);
    checksum += record.out_degree;
    for (const std::int32_t target : record.targets) {
      checksum += static_cast<std::uint64_t>(target);
    }
  }
  volatile std::uint64_t sink = checksum;
  (void)sink;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) {
    return 0;
  }
  auto dir = gpsa::ScratchDir::create("fuzz_csr_parser");
  if (!dir.is_ok()) {
    return 0;
  }
  const std::uint8_t selector = data[0];
  if ((selector & 1) == 0) {
    fuzz_adjacency_text(dir.value(), data + 1, size - 1,
                        (selector & 2) != 0);
  } else {
    fuzz_csr_binary(dir.value(), data + 1, size - 1);
  }
  return 0;
}
