# Sanitizer support for the whole build (tentpole of the correctness PR).
#
# Usage:
#   cmake -B build -S . -DGPSA_SANITIZE="address;undefined"   # ASan + UBSan
#   cmake -B build -S . -DGPSA_SANITIZE=thread                # TSan
#
# The option materializes as the `gpsa_sanitize` INTERFACE target, which every
# library and executable in the repo links. When GPSA_SANITIZE is empty the
# target carries no flags and the build is identical to a plain one.
#
# Policy (recorded in DESIGN.md §7):
#   - sanitized builds compile with -fno-sanitize-recover=all so any report
#     is a hard test failure (ctest red), never a log line someone ignores;
#   - suppressions live next to this file (asan.supp / lsan.supp / tsan.supp /
#     ubsan.supp) and start empty; any entry added later must cite the
#     upstream bug it works around;
#   - GPSA_SANITIZER_TEST_ENV exports the runtime options (including the
#     suppression paths) and tests/CMakeLists.txt attaches it to every test.

set(GPSA_SANITIZE "" CACHE STRING
    "Sanitizers to enable: \"\" (off), \"address;undefined\", or \"thread\"")

add_library(gpsa_sanitize INTERFACE)

set(GPSA_SANITIZER_TEST_ENV "")

if(NOT GPSA_SANITIZE STREQUAL "")
  # Accept a comma-separated spelling too (easier to pass through shells).
  string(REPLACE "," ";" GPSA_SANITIZE_LIST "${GPSA_SANITIZE}")

  set(_gpsa_san_flags "")
  foreach(_san IN LISTS GPSA_SANITIZE_LIST)
    if(_san STREQUAL "address")
      list(APPEND _gpsa_san_flags -fsanitize=address)
    elseif(_san STREQUAL "undefined")
      list(APPEND _gpsa_san_flags -fsanitize=undefined)
    elseif(_san STREQUAL "thread")
      list(APPEND _gpsa_san_flags -fsanitize=thread)
    elseif(_san STREQUAL "leak")
      list(APPEND _gpsa_san_flags -fsanitize=leak)
    else()
      message(FATAL_ERROR "GPSA_SANITIZE: unknown sanitizer '${_san}' "
                          "(expected address, undefined, thread, or leak)")
    endif()
  endforeach()

  if("thread" IN_LIST GPSA_SANITIZE_LIST AND
     ("address" IN_LIST GPSA_SANITIZE_LIST OR "leak" IN_LIST GPSA_SANITIZE_LIST))
    message(FATAL_ERROR
        "GPSA_SANITIZE: thread is incompatible with address/leak "
        "(their shadow memory layouts conflict); build them separately")
  endif()

  target_compile_options(gpsa_sanitize INTERFACE
    ${_gpsa_san_flags}
    -g
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all)
  target_link_options(gpsa_sanitize INTERFACE ${_gpsa_san_flags})
  # Lets tests shrink iteration counts that exist only to fill wall-clock
  # time; the interleavings under test stay identical.
  target_compile_definitions(gpsa_sanitize INTERFACE GPSA_SANITIZE_ACTIVE=1)

  set(_gpsa_supp_dir "${CMAKE_CURRENT_LIST_DIR}")
  if("address" IN_LIST GPSA_SANITIZE_LIST)
    list(APPEND GPSA_SANITIZER_TEST_ENV
      "ASAN_OPTIONS=detect_stack_use_after_return=1:check_initialization_order=1:detect_leaks=1:suppressions=${_gpsa_supp_dir}/asan.supp"
      "LSAN_OPTIONS=suppressions=${_gpsa_supp_dir}/lsan.supp")
  endif()
  if("leak" IN_LIST GPSA_SANITIZE_LIST AND
     NOT "address" IN_LIST GPSA_SANITIZE_LIST)
    # Standalone LSan (the CI leak leg): same suppression file as the
    # LSan embedded in ASan above.
    list(APPEND GPSA_SANITIZER_TEST_ENV
      "LSAN_OPTIONS=suppressions=${_gpsa_supp_dir}/lsan.supp")
  endif()
  if("undefined" IN_LIST GPSA_SANITIZE_LIST)
    list(APPEND GPSA_SANITIZER_TEST_ENV
      "UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1:suppressions=${_gpsa_supp_dir}/ubsan.supp")
  endif()
  if("thread" IN_LIST GPSA_SANITIZE_LIST)
    list(APPEND GPSA_SANITIZER_TEST_ENV
      "TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1:suppressions=${_gpsa_supp_dir}/tsan.supp")
  endif()

  message(STATUS "GPSA: sanitizers enabled: ${GPSA_SANITIZE_LIST}")
endif()
