file(REMOVE_RECURSE
  "CMakeFiles/test_adjacency.dir/test_adjacency.cpp.o"
  "CMakeFiles/test_adjacency.dir/test_adjacency.cpp.o.d"
  "test_adjacency"
  "test_adjacency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adjacency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
