# Empty compiler generated dependencies file for test_adjacency.
# This may be replaced when dependencies are built.
