
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_storage.cpp" "tests/CMakeFiles/test_storage.dir/test_storage.cpp.o" "gcc" "tests/CMakeFiles/test_storage.dir/test_storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/gpsa_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/gpsa_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/gpsa_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gpsa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gpsa_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gpsa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gpsa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/actor/CMakeFiles/gpsa_actor.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/gpsa_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
