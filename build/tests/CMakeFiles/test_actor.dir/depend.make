# Empty dependencies file for test_actor.
# This may be replaced when dependencies are built.
