file(REMOVE_RECURSE
  "CMakeFiles/test_actor.dir/test_actor.cpp.o"
  "CMakeFiles/test_actor.dir/test_actor.cpp.o.d"
  "test_actor"
  "test_actor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_actor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
