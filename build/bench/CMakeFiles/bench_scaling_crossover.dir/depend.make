# Empty dependencies file for bench_scaling_crossover.
# This may be replaced when dependencies are built.
