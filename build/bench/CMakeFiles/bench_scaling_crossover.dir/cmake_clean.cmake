file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_crossover.dir/bench_scaling_crossover.cpp.o"
  "CMakeFiles/bench_scaling_crossover.dir/bench_scaling_crossover.cpp.o.d"
  "bench_scaling_crossover"
  "bench_scaling_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
