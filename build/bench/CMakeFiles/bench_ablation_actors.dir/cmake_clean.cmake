file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_actors.dir/bench_ablation_actors.cpp.o"
  "CMakeFiles/bench_ablation_actors.dir/bench_ablation_actors.cpp.o.d"
  "bench_ablation_actors"
  "bench_ablation_actors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_actors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
