# Empty compiler generated dependencies file for bench_ablation_actors.
# This may be replaced when dependencies are built.
