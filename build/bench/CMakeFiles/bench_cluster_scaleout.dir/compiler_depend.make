# Empty compiler generated dependencies file for bench_cluster_scaleout.
# This may be replaced when dependencies are built.
