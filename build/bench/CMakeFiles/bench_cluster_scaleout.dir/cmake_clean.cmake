file(REMOVE_RECURSE
  "CMakeFiles/bench_cluster_scaleout.dir/bench_cluster_scaleout.cpp.o"
  "CMakeFiles/bench_cluster_scaleout.dir/bench_cluster_scaleout.cpp.o.d"
  "bench_cluster_scaleout"
  "bench_cluster_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
