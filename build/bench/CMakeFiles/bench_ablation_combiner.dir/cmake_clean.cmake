file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_combiner.dir/bench_ablation_combiner.cpp.o"
  "CMakeFiles/bench_ablation_combiner.dir/bench_ablation_combiner.cpp.o.d"
  "bench_ablation_combiner"
  "bench_ablation_combiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_combiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
