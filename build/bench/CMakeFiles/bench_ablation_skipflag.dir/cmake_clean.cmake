file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_skipflag.dir/bench_ablation_skipflag.cpp.o"
  "CMakeFiles/bench_ablation_skipflag.dir/bench_ablation_skipflag.cpp.o.d"
  "bench_ablation_skipflag"
  "bench_ablation_skipflag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_skipflag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
