# Empty dependencies file for bench_ablation_skipflag.
# This may be replaced when dependencies are built.
