# Empty dependencies file for bench_fig07_google.
# This may be replaced when dependencies are built.
