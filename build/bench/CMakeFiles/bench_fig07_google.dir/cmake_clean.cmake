file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_google.dir/bench_fig07_google.cpp.o"
  "CMakeFiles/bench_fig07_google.dir/bench_fig07_google.cpp.o.d"
  "bench_fig07_google"
  "bench_fig07_google.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_google.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
