file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_pokec.dir/bench_fig08_pokec.cpp.o"
  "CMakeFiles/bench_fig08_pokec.dir/bench_fig08_pokec.cpp.o.d"
  "bench_fig08_pokec"
  "bench_fig08_pokec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_pokec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
