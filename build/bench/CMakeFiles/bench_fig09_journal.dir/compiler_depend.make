# Empty compiler generated dependencies file for bench_fig09_journal.
# This may be replaced when dependencies are built.
