file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_journal.dir/bench_fig09_journal.cpp.o"
  "CMakeFiles/bench_fig09_journal.dir/bench_fig09_journal.cpp.o.d"
  "bench_fig09_journal"
  "bench_fig09_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
