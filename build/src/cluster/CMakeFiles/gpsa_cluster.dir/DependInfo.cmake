
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster_engine.cpp" "src/cluster/CMakeFiles/gpsa_cluster.dir/cluster_engine.cpp.o" "gcc" "src/cluster/CMakeFiles/gpsa_cluster.dir/cluster_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/actor/CMakeFiles/gpsa_actor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gpsa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gpsa_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpsa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gpsa_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/gpsa_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
