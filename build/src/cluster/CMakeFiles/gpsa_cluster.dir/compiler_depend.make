# Empty compiler generated dependencies file for gpsa_cluster.
# This may be replaced when dependencies are built.
