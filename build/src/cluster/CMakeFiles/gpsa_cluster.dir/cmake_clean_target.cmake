file(REMOVE_RECURSE
  "libgpsa_cluster.a"
)
