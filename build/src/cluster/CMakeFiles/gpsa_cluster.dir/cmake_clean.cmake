file(REMOVE_RECURSE
  "CMakeFiles/gpsa_cluster.dir/cluster_engine.cpp.o"
  "CMakeFiles/gpsa_cluster.dir/cluster_engine.cpp.o.d"
  "libgpsa_cluster.a"
  "libgpsa_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpsa_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
