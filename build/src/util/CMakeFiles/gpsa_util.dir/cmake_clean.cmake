file(REMOVE_RECURSE
  "CMakeFiles/gpsa_util.dir/config.cpp.o"
  "CMakeFiles/gpsa_util.dir/config.cpp.o.d"
  "CMakeFiles/gpsa_util.dir/logging.cpp.o"
  "CMakeFiles/gpsa_util.dir/logging.cpp.o.d"
  "CMakeFiles/gpsa_util.dir/stats.cpp.o"
  "CMakeFiles/gpsa_util.dir/stats.cpp.o.d"
  "CMakeFiles/gpsa_util.dir/status.cpp.o"
  "CMakeFiles/gpsa_util.dir/status.cpp.o.d"
  "CMakeFiles/gpsa_util.dir/thread.cpp.o"
  "CMakeFiles/gpsa_util.dir/thread.cpp.o.d"
  "libgpsa_util.a"
  "libgpsa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpsa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
