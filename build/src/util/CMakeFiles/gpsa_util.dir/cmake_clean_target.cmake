file(REMOVE_RECURSE
  "libgpsa_util.a"
)
