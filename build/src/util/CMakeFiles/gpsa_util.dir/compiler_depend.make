# Empty compiler generated dependencies file for gpsa_util.
# This may be replaced when dependencies are built.
