file(REMOVE_RECURSE
  "libgpsa_metrics.a"
)
