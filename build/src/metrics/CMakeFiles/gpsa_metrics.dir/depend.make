# Empty dependencies file for gpsa_metrics.
# This may be replaced when dependencies are built.
