
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/cpu_monitor.cpp" "src/metrics/CMakeFiles/gpsa_metrics.dir/cpu_monitor.cpp.o" "gcc" "src/metrics/CMakeFiles/gpsa_metrics.dir/cpu_monitor.cpp.o.d"
  "/root/repo/src/metrics/io_model.cpp" "src/metrics/CMakeFiles/gpsa_metrics.dir/io_model.cpp.o" "gcc" "src/metrics/CMakeFiles/gpsa_metrics.dir/io_model.cpp.o.d"
  "/root/repo/src/metrics/table.cpp" "src/metrics/CMakeFiles/gpsa_metrics.dir/table.cpp.o" "gcc" "src/metrics/CMakeFiles/gpsa_metrics.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gpsa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/gpsa_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
