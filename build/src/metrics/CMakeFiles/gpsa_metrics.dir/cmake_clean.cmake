file(REMOVE_RECURSE
  "CMakeFiles/gpsa_metrics.dir/cpu_monitor.cpp.o"
  "CMakeFiles/gpsa_metrics.dir/cpu_monitor.cpp.o.d"
  "CMakeFiles/gpsa_metrics.dir/io_model.cpp.o"
  "CMakeFiles/gpsa_metrics.dir/io_model.cpp.o.d"
  "CMakeFiles/gpsa_metrics.dir/table.cpp.o"
  "CMakeFiles/gpsa_metrics.dir/table.cpp.o.d"
  "libgpsa_metrics.a"
  "libgpsa_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpsa_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
