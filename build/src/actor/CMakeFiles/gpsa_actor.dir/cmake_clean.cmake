file(REMOVE_RECURSE
  "CMakeFiles/gpsa_actor.dir/actor_system.cpp.o"
  "CMakeFiles/gpsa_actor.dir/actor_system.cpp.o.d"
  "CMakeFiles/gpsa_actor.dir/scheduler.cpp.o"
  "CMakeFiles/gpsa_actor.dir/scheduler.cpp.o.d"
  "libgpsa_actor.a"
  "libgpsa_actor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpsa_actor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
