file(REMOVE_RECURSE
  "libgpsa_actor.a"
)
