
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/actor/actor_system.cpp" "src/actor/CMakeFiles/gpsa_actor.dir/actor_system.cpp.o" "gcc" "src/actor/CMakeFiles/gpsa_actor.dir/actor_system.cpp.o.d"
  "/root/repo/src/actor/scheduler.cpp" "src/actor/CMakeFiles/gpsa_actor.dir/scheduler.cpp.o" "gcc" "src/actor/CMakeFiles/gpsa_actor.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gpsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
