# Empty dependencies file for gpsa_actor.
# This may be replaced when dependencies are built.
