file(REMOVE_RECURSE
  "CMakeFiles/gpsa_graph.dir/adjacency.cpp.o"
  "CMakeFiles/gpsa_graph.dir/adjacency.cpp.o.d"
  "CMakeFiles/gpsa_graph.dir/csr.cpp.o"
  "CMakeFiles/gpsa_graph.dir/csr.cpp.o.d"
  "CMakeFiles/gpsa_graph.dir/csr_file.cpp.o"
  "CMakeFiles/gpsa_graph.dir/csr_file.cpp.o.d"
  "CMakeFiles/gpsa_graph.dir/edge_list.cpp.o"
  "CMakeFiles/gpsa_graph.dir/edge_list.cpp.o.d"
  "CMakeFiles/gpsa_graph.dir/generators.cpp.o"
  "CMakeFiles/gpsa_graph.dir/generators.cpp.o.d"
  "CMakeFiles/gpsa_graph.dir/partition.cpp.o"
  "CMakeFiles/gpsa_graph.dir/partition.cpp.o.d"
  "libgpsa_graph.a"
  "libgpsa_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpsa_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
