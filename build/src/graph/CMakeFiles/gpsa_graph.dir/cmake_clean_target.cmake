file(REMOVE_RECURSE
  "libgpsa_graph.a"
)
