# Empty compiler generated dependencies file for gpsa_graph.
# This may be replaced when dependencies are built.
