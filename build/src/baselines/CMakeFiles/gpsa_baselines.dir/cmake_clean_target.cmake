file(REMOVE_RECURSE
  "libgpsa_baselines.a"
)
