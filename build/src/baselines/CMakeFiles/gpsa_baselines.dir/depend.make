# Empty dependencies file for gpsa_baselines.
# This may be replaced when dependencies are built.
