file(REMOVE_RECURSE
  "CMakeFiles/gpsa_baselines.dir/common/baseline_result.cpp.o"
  "CMakeFiles/gpsa_baselines.dir/common/baseline_result.cpp.o.d"
  "CMakeFiles/gpsa_baselines.dir/graphchi/psw_engine.cpp.o"
  "CMakeFiles/gpsa_baselines.dir/graphchi/psw_engine.cpp.o.d"
  "CMakeFiles/gpsa_baselines.dir/graphchi/shard.cpp.o"
  "CMakeFiles/gpsa_baselines.dir/graphchi/shard.cpp.o.d"
  "CMakeFiles/gpsa_baselines.dir/xstream/xstream_engine.cpp.o"
  "CMakeFiles/gpsa_baselines.dir/xstream/xstream_engine.cpp.o.d"
  "libgpsa_baselines.a"
  "libgpsa_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpsa_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
