# Empty compiler generated dependencies file for gpsa_storage.
# This may be replaced when dependencies are built.
