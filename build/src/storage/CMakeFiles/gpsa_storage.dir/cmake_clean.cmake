file(REMOVE_RECURSE
  "CMakeFiles/gpsa_storage.dir/recovery.cpp.o"
  "CMakeFiles/gpsa_storage.dir/recovery.cpp.o.d"
  "CMakeFiles/gpsa_storage.dir/value_file.cpp.o"
  "CMakeFiles/gpsa_storage.dir/value_file.cpp.o.d"
  "libgpsa_storage.a"
  "libgpsa_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpsa_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
