
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/recovery.cpp" "src/storage/CMakeFiles/gpsa_storage.dir/recovery.cpp.o" "gcc" "src/storage/CMakeFiles/gpsa_storage.dir/recovery.cpp.o.d"
  "/root/repo/src/storage/value_file.cpp" "src/storage/CMakeFiles/gpsa_storage.dir/value_file.cpp.o" "gcc" "src/storage/CMakeFiles/gpsa_storage.dir/value_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gpsa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/gpsa_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gpsa_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
