file(REMOVE_RECURSE
  "libgpsa_storage.a"
)
