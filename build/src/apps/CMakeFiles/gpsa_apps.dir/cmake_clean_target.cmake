file(REMOVE_RECURSE
  "libgpsa_apps.a"
)
