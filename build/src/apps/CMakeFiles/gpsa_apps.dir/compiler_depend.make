# Empty compiler generated dependencies file for gpsa_apps.
# This may be replaced when dependencies are built.
