file(REMOVE_RECURSE
  "CMakeFiles/gpsa_apps.dir/bfs.cpp.o"
  "CMakeFiles/gpsa_apps.dir/bfs.cpp.o.d"
  "CMakeFiles/gpsa_apps.dir/cc.cpp.o"
  "CMakeFiles/gpsa_apps.dir/cc.cpp.o.d"
  "CMakeFiles/gpsa_apps.dir/degree_count.cpp.o"
  "CMakeFiles/gpsa_apps.dir/degree_count.cpp.o.d"
  "CMakeFiles/gpsa_apps.dir/multi_bfs.cpp.o"
  "CMakeFiles/gpsa_apps.dir/multi_bfs.cpp.o.d"
  "CMakeFiles/gpsa_apps.dir/pagerank.cpp.o"
  "CMakeFiles/gpsa_apps.dir/pagerank.cpp.o.d"
  "CMakeFiles/gpsa_apps.dir/reference.cpp.o"
  "CMakeFiles/gpsa_apps.dir/reference.cpp.o.d"
  "CMakeFiles/gpsa_apps.dir/sssp.cpp.o"
  "CMakeFiles/gpsa_apps.dir/sssp.cpp.o.d"
  "libgpsa_apps.a"
  "libgpsa_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpsa_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
