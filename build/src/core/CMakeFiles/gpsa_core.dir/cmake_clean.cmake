file(REMOVE_RECURSE
  "CMakeFiles/gpsa_core.dir/computer.cpp.o"
  "CMakeFiles/gpsa_core.dir/computer.cpp.o.d"
  "CMakeFiles/gpsa_core.dir/dispatcher.cpp.o"
  "CMakeFiles/gpsa_core.dir/dispatcher.cpp.o.d"
  "CMakeFiles/gpsa_core.dir/engine.cpp.o"
  "CMakeFiles/gpsa_core.dir/engine.cpp.o.d"
  "CMakeFiles/gpsa_core.dir/manager.cpp.o"
  "CMakeFiles/gpsa_core.dir/manager.cpp.o.d"
  "libgpsa_core.a"
  "libgpsa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpsa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
