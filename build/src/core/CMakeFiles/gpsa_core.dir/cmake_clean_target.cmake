file(REMOVE_RECURSE
  "libgpsa_core.a"
)
