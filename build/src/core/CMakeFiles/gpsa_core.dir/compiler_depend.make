# Empty compiler generated dependencies file for gpsa_core.
# This may be replaced when dependencies are built.
