file(REMOVE_RECURSE
  "CMakeFiles/gpsa_platform.dir/cpu_stats.cpp.o"
  "CMakeFiles/gpsa_platform.dir/cpu_stats.cpp.o.d"
  "CMakeFiles/gpsa_platform.dir/file_util.cpp.o"
  "CMakeFiles/gpsa_platform.dir/file_util.cpp.o.d"
  "CMakeFiles/gpsa_platform.dir/mmap_file.cpp.o"
  "CMakeFiles/gpsa_platform.dir/mmap_file.cpp.o.d"
  "libgpsa_platform.a"
  "libgpsa_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpsa_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
