# Empty compiler generated dependencies file for gpsa_platform.
# This may be replaced when dependencies are built.
