file(REMOVE_RECURSE
  "libgpsa_platform.a"
)
