
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cpu_stats.cpp" "src/platform/CMakeFiles/gpsa_platform.dir/cpu_stats.cpp.o" "gcc" "src/platform/CMakeFiles/gpsa_platform.dir/cpu_stats.cpp.o.d"
  "/root/repo/src/platform/file_util.cpp" "src/platform/CMakeFiles/gpsa_platform.dir/file_util.cpp.o" "gcc" "src/platform/CMakeFiles/gpsa_platform.dir/file_util.cpp.o.d"
  "/root/repo/src/platform/mmap_file.cpp" "src/platform/CMakeFiles/gpsa_platform.dir/mmap_file.cpp.o" "gcc" "src/platform/CMakeFiles/gpsa_platform.dir/mmap_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gpsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
