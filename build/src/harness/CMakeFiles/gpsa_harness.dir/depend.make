# Empty dependencies file for gpsa_harness.
# This may be replaced when dependencies are built.
