file(REMOVE_RECURSE
  "libgpsa_harness.a"
)
