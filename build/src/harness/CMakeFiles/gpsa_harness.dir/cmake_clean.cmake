file(REMOVE_RECURSE
  "CMakeFiles/gpsa_harness.dir/experiment.cpp.o"
  "CMakeFiles/gpsa_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/gpsa_harness.dir/trace.cpp.o"
  "CMakeFiles/gpsa_harness.dir/trace.cpp.o.d"
  "libgpsa_harness.a"
  "libgpsa_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpsa_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
