file(REMOVE_RECURSE
  "CMakeFiles/communities.dir/communities.cpp.o"
  "CMakeFiles/communities.dir/communities.cpp.o.d"
  "communities"
  "communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
