file(REMOVE_RECURSE
  "CMakeFiles/gpsa_cli.dir/gpsa_cli.cpp.o"
  "CMakeFiles/gpsa_cli.dir/gpsa_cli.cpp.o.d"
  "gpsa_cli"
  "gpsa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpsa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
