# Empty compiler generated dependencies file for gpsa_cli.
# This may be replaced when dependencies are built.
